(* End-to-end kernel tests: transactional DML, snapshot isolation
   semantics, conflicts/deadlocks under concurrent fibers, GC, freeze,
   and crash recovery. *)
open Phoebe_core
module Value = Phoebe_storage.Value
module Txnmgr = Phoebe_txn.Txnmgr
module Scheduler = Phoebe_runtime.Scheduler
module Wal = Phoebe_wal.Wal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_config =
  { Config.default with Config.n_workers = 2; slots_per_worker = 4; buffer_bytes = 64 * 1024 * 1024 }

let make_db ?(cfg = small_config) () = Db.create cfg

let accounts_db ?cfg () =
  let db = make_db ?cfg () in
  let t =
    Db.create_table db ~name:"accounts"
      ~schema:[ ("owner", Value.T_str); ("balance", Value.T_int) ]
  in
  Db.create_index db t ~name:"accounts_by_owner" ~cols:[ "owner" ] ~unique:true;
  (db, t)

let insert_account db t owner balance =
  Db.with_txn db (fun txn -> Table.insert t txn [| Value.Str owner; Value.Int balance |])

let balance_of db t rid =
  Db.with_txn db (fun txn ->
      match Table.get t txn ~rid with
      | Some row -> ( match row.(1) with Value.Int v -> v | _ -> -1)
      | None -> -1)

(* ------------------------------------------------------------------ *)
(* Basic DML *)

let test_insert_get () =
  let db, t = accounts_db () in
  let rid = insert_account db t "alice" 100 in
  check_int "balance" 100 (balance_of db t rid);
  Db.with_txn db (fun txn ->
      match Table.get_col t txn ~rid ~col:"owner" with
      | Some (Value.Str s) -> Alcotest.(check string) "owner" "alice" s
      | _ -> Alcotest.fail "owner column missing")

let test_update () =
  let db, t = accounts_db () in
  let rid = insert_account db t "bob" 50 in
  let ok = Db.with_txn db (fun txn -> Table.update t txn ~rid [ ("balance", Value.Int 75) ]) in
  check_bool "updated" true ok;
  check_int "new balance" 75 (balance_of db t rid)

let test_update_missing_row () =
  let db, t = accounts_db () in
  let ok = Db.with_txn db (fun txn -> Table.update t txn ~rid:999 [ ("balance", Value.Int 1) ]) in
  check_bool "no such row" false ok

let test_delete () =
  let db, t = accounts_db () in
  let rid = insert_account db t "carol" 10 in
  let ok = Db.with_txn db (fun txn -> Table.delete t txn ~rid) in
  check_bool "deleted" true ok;
  Db.with_txn db (fun txn -> check_bool "gone" true (Table.get t txn ~rid = None));
  let again = Db.with_txn db (fun txn -> Table.delete t txn ~rid) in
  check_bool "double delete" false again

let test_multi_statement_txn () =
  let db, t = accounts_db () in
  let a = insert_account db t "a" 100 in
  let b = insert_account db t "b" 100 in
  Db.with_txn db (fun txn ->
      ignore (Table.update t txn ~rid:a [ ("balance", Value.Int 60) ]);
      ignore (Table.update t txn ~rid:b [ ("balance", Value.Int 140) ]));
  check_int "a" 60 (balance_of db t a);
  check_int "b" 140 (balance_of db t b)

(* ------------------------------------------------------------------ *)
(* Rollback *)

let test_abort_rolls_back_update () =
  let db, t = accounts_db () in
  let rid = insert_account db t "dave" 100 in
  (try
     Db.with_txn db (fun txn ->
         ignore (Table.update t txn ~rid [ ("balance", Value.Int 0) ]);
         failwith "user error")
   with Failure _ -> ());
  check_int "balance restored" 100 (balance_of db t rid)

let test_abort_rolls_back_insert () =
  let db, t = accounts_db () in
  (try
     Db.with_txn db (fun txn ->
         ignore (Table.insert t txn [| Value.Str "ghost"; Value.Int 1 |]);
         failwith "user error")
   with Failure _ -> ());
  Db.with_txn db (fun txn ->
      check_bool "insert rolled back in index" true
        (Table.index_lookup t txn ~index:"accounts_by_owner" ~key:[ Value.Str "ghost" ] = []))

let test_abort_rolls_back_delete () =
  let db, t = accounts_db () in
  let rid = insert_account db t "erin" 5 in
  (try
     Db.with_txn db (fun txn ->
         ignore (Table.delete t txn ~rid);
         failwith "user error")
   with Failure _ -> ());
  check_int "row resurrected" 5 (balance_of db t rid)

(* ------------------------------------------------------------------ *)
(* Unique constraints *)

let test_unique_violation_aborts () =
  let db, t = accounts_db () in
  ignore (insert_account db t "frank" 1);
  check_bool "duplicate owner rejected" true
    (try
       ignore (insert_account db t "frank" 2);
       false
     with Txnmgr.Abort _ -> true)

let test_unique_after_delete_ok () =
  let db, t = accounts_db () in
  let rid = insert_account db t "gina" 1 in
  ignore (Db.with_txn db (fun txn -> Table.delete t txn ~rid));
  let rid2 = insert_account db t "gina" 2 in
  check_bool "re-insert after delete" true (rid2 > rid)

(* ------------------------------------------------------------------ *)
(* Index access *)

let test_index_lookup () =
  let db, t = accounts_db () in
  let rid = insert_account db t "henry" 42 in
  Db.with_txn db (fun txn ->
      match Table.index_lookup_first t txn ~index:"accounts_by_owner" ~key:[ Value.Str "henry" ] with
      | Some (r, row) ->
        check_int "rid" rid r;
        check_bool "balance" true (row.(1) = Value.Int 42)
      | None -> Alcotest.fail "index lookup failed")

let test_index_prefix_scan () =
  let db = make_db () in
  let t =
    Db.create_table db ~name:"orders"
      ~schema:[ ("w", Value.T_int); ("d", Value.T_int); ("o", Value.T_int) ]
  in
  Db.create_index db t ~name:"orders_pk" ~cols:[ "w"; "d"; "o" ] ~unique:true;
  Db.with_txn db (fun txn ->
      for w = 1 to 2 do
        for d = 1 to 3 do
          for o = 1 to 4 do
            ignore (Table.insert t txn [| Value.Int w; Value.Int d; Value.Int o |])
          done
        done
      done);
  Db.with_txn db (fun txn ->
      let seen = ref [] in
      Table.index_prefix t txn ~index:"orders_pk" ~prefix:[ Value.Int 1; Value.Int 2 ] (fun _ row ->
          (match row.(2) with Value.Int o -> seen := o :: !seen | _ -> ());
          true);
      Alcotest.(check (list int)) "prefix rows in order" [ 1; 2; 3; 4 ] (List.rev !seen))

let test_scan_visibility () =
  let db, t = accounts_db () in
  let _r1 = insert_account db t "s1" 1 in
  let r2 = insert_account db t "s2" 2 in
  ignore (Db.with_txn db (fun txn -> Table.delete t txn ~rid:r2));
  Db.with_txn db (fun txn ->
      let seen = ref [] in
      Table.scan t txn (fun _ row -> seen := Value.to_string row.(0) :: !seen);
      Alcotest.(check (list string)) "only live rows" [ "s1" ] (List.rev !seen))

(* ------------------------------------------------------------------ *)
(* Snapshot isolation between interleaved fibers *)

let test_uncommitted_writes_invisible () =
  let db, t = accounts_db () in
  let rid = insert_account db t "iris" 100 in
  let observed = ref (-1) in
  let q = Scheduler.Waitq.create () in
  (* writer: update then park (uncommitted) until reader has looked *)
  Db.submit db (fun txn ->
      ignore (Table.update t txn ~rid [ ("balance", Value.Int 999) ]);
      Scheduler.Waitq.wait q);
  Scheduler.submit (Db.scheduler db) (fun () ->
      (* big enough to flush past the coalescing granule, so the reader
         runs strictly after the writer's (uncommitted) update *)
      Scheduler.charge Phoebe_sim.Component.Effective 100_000;
      Db.with_txn db (fun txn ->
          match Table.get t txn ~rid with
          | Some row -> (match row.(1) with Value.Int v -> observed := v | _ -> ())
          | None -> observed := -2);
      Scheduler.Waitq.signal_all q);
  Db.run db;
  check_int "reader saw committed value" 100 !observed

let test_read_committed_sees_new_commits () =
  let db, t = accounts_db () in
  let rid = insert_account db t "jack" 1 in
  let before = ref 0 and after = ref 0 in
  let q = Scheduler.Waitq.create () in
  Scheduler.submit (Db.scheduler db) (fun () ->
      let txn = Txnmgr.begin_txn (Db.txnmgr db) ~isolation:Txnmgr.Read_committed ~slot:(Scheduler.current_slot ()) in
      (match Table.get t txn ~rid with Some row -> (match row.(1) with Value.Int v -> before := v | _ -> ()) | None -> ());
      Scheduler.Waitq.wait q;
      (* statement boundary: read committed refreshes and sees the new value *)
      (match Table.get t txn ~rid with Some row -> (match row.(1) with Value.Int v -> after := v | _ -> ()) | None -> ());
      Txnmgr.commit (Db.txnmgr db) txn);
  Scheduler.submit (Db.scheduler db) (fun () ->
      Scheduler.charge Phoebe_sim.Component.Effective 100_000;
      Db.with_txn db (fun txn -> ignore (Table.update t txn ~rid [ ("balance", Value.Int 2) ]));
      Scheduler.Waitq.signal_all q);
  Db.run db;
  check_int "before" 1 !before;
  check_int "read committed sees commit" 2 !after

let test_repeatable_read_stable () =
  let db, t = accounts_db () in
  let rid = insert_account db t "kate" 1 in
  let before = ref 0 and after = ref 0 in
  let q = Scheduler.Waitq.create () in
  Scheduler.submit (Db.scheduler db) (fun () ->
      let txn = Txnmgr.begin_txn (Db.txnmgr db) ~isolation:Txnmgr.Repeatable_read ~slot:(Scheduler.current_slot ()) in
      (match Table.get t txn ~rid with Some row -> (match row.(1) with Value.Int v -> before := v | _ -> ()) | None -> ());
      Scheduler.Waitq.wait q;
      (match Table.get t txn ~rid with Some row -> (match row.(1) with Value.Int v -> after := v | _ -> ()) | None -> ());
      Txnmgr.commit (Db.txnmgr db) txn);
  Scheduler.submit (Db.scheduler db) (fun () ->
      Scheduler.charge Phoebe_sim.Component.Effective 100_000;
      Db.with_txn db (fun txn -> ignore (Table.update t txn ~rid [ ("balance", Value.Int 2) ]));
      Scheduler.Waitq.signal_all q);
  Db.run db;
  check_int "before" 1 !before;
  check_int "repeatable read stays at snapshot" 1 !after

(* ------------------------------------------------------------------ *)
(* Write-write conflicts *)

let test_concurrent_increments_serialize () =
  (* Read committed permits lost updates for read-then-write patterns;
     repeatable read's first-committer-wins plus the retry loop makes
     increments atomic. *)
  let db, t = accounts_db () in
  let rid = insert_account db t "counter" 0 in
  for _ = 1 to 50 do
    Db.submit ~isolation:Txnmgr.Repeatable_read db (fun txn ->
        match Table.get t txn ~rid with
        | Some row ->
          let v = match row.(1) with Value.Int v -> v | _ -> 0 in
          Scheduler.charge Phoebe_sim.Component.Effective 5_000;
          ignore (Table.update t txn ~rid [ ("balance", Value.Int (v + 1)) ])
        | None -> ())
  done;
  Db.run db;
  check_int "no lost updates under RR" 50 (balance_of db t rid)

let test_rr_first_committer_wins () =
  let db, t = accounts_db () in
  let rid = insert_account db t "rr" 0 in
  let aborted = ref 0 in
  let attempt () =
    Scheduler.submit (Db.scheduler db) (fun () ->
        let txn =
          Txnmgr.begin_txn (Db.txnmgr db) ~isolation:Txnmgr.Repeatable_read
            ~slot:(Scheduler.current_slot ())
        in
        match
          ignore (Table.get t txn ~rid);
          Scheduler.charge Phoebe_sim.Component.Effective 50_000;
          Table.update t txn ~rid [ ("balance", Value.Int 1) ]
        with
        | _ -> Txnmgr.commit (Db.txnmgr db) txn
        | exception Txnmgr.Abort _ ->
          incr aborted;
          Txnmgr.abort (Db.txnmgr db) txn ~rollback:(fun _ -> ()))
  in
  attempt ();
  attempt ();
  Db.run db;
  check_int "exactly one aborted" 1 !aborted

let test_deadlock_detected_and_resolved () =
  let db, t = accounts_db () in
  let a = insert_account db t "x" 0 in
  let b = insert_account db t "y" 0 in
  (* Two RR transactions updating (a then b) and (b then a), paused in
     between so they collide. Deadlock detection must abort one; the
     retry loop then lets both finish. *)
  let submit_pair first second =
    Db.submit ~isolation:Txnmgr.Repeatable_read db (fun txn ->
        ignore (Table.update t txn ~rid:first [ ("balance", Value.Int 1) ]);
        Scheduler.charge Phoebe_sim.Component.Effective 50_000;
        Scheduler.yield Scheduler.Low;
        ignore (Table.update t txn ~rid:second [ ("balance", Value.Int 2) ]))
  in
  submit_pair a b;
  submit_pair b a;
  Db.run db;
  check_bool "both eventually committed" true (Db.committed db >= 4);
  check_bool "someone aborted along the way" true (Db.aborted db >= 1);
  (* whichever pair committed last wrote 1 to its first row and 2 to its
     second: the final balances are {1, 2} in some order *)
  Alcotest.(check (list int)) "final balances" [ 1; 2 ]
    (List.sort compare [ balance_of db t a; balance_of db t b ])

(* ------------------------------------------------------------------ *)
(* Transaction deadlines and admission control *)

let test_txn_deadline_aborts_stalled_wait () =
  let cfg = { small_config with Config.n_workers = 1; txn_deadline_ns = 100_000 } in
  let db, t = accounts_db ~cfg () in
  let rid = insert_account db t "d" 0 in
  let eng = Db.engine db in
  (* holder: writes the row, then stalls on "I/O" for a millisecond
     while still active *)
  Scheduler.submit (Db.scheduler db) (fun () ->
      Db.with_txn db (fun txn ->
          ignore (Table.update t txn ~rid [ ("balance", Value.Int 1) ]);
          Scheduler.io_wait (fun resume ->
              Phoebe_sim.Engine.schedule eng ~delay:1_000_000 (fun () -> resume ()))));
  (* waiter: blocks behind the holder and hits its 100 µs deadline long
     before the holder resumes *)
  let reason = ref None in
  Scheduler.submit (Db.scheduler db) (fun () ->
      try Db.with_txn db (fun txn -> ignore (Table.update t txn ~rid [ ("balance", Value.Int 2) ]))
      with Txnmgr.Abort (r, _) -> reason := Some r);
  Db.run db;
  check_bool "aborted with reason Deadline" true (!reason = Some Txnmgr.Deadline);
  let s = Db.stats db in
  check_int "deadline abort counted" 1 s.Db.deadline_aborts;
  check_bool "a wait timed out" true (s.Db.wait_timeouts >= 1);
  (* the stalled holder still committed; the timed-out waiter rolled back *)
  check_int "holder's write survived" 1 (balance_of db t rid)

let test_no_deadline_means_no_timeouts () =
  (* Same shape without a deadline: the waiter simply outwaits the stall. *)
  let cfg = { small_config with Config.n_workers = 1 } in
  let db, t = accounts_db ~cfg () in
  let rid = insert_account db t "d" 0 in
  let eng = Db.engine db in
  Scheduler.submit (Db.scheduler db) (fun () ->
      Db.with_txn db (fun txn ->
          ignore (Table.update t txn ~rid [ ("balance", Value.Int 1) ]);
          Scheduler.io_wait (fun resume ->
              Phoebe_sim.Engine.schedule eng ~delay:1_000_000 (fun () -> resume ()))));
  Db.submit db (fun txn -> ignore (Table.update t txn ~rid [ ("balance", Value.Int 2) ]));
  Db.run db;
  let s = Db.stats db in
  check_int "no wait ever timed out" 0 s.Db.wait_timeouts;
  check_int "no deadline aborts" 0 s.Db.deadline_aborts;
  check_int "waiter won in the end" 2 (balance_of db t rid)

let test_admission_sheds_over_cap () =
  let cfg =
    {
      small_config with
      Config.admission = { Config.enabled = true; max_inflight = 2; max_lock_wait_p95_ns = 0 };
    }
  in
  let db, t = accounts_db ~cfg () in
  let accepted = ref 0 and shed = ref 0 in
  for i = 1 to 5 do
    match
      Db.submit db (fun txn ->
          ignore (Table.insert t txn [| Value.Str (string_of_int i); Value.Int i |]))
    with
    | () -> incr accepted
    | exception Db.Overloaded -> incr shed
  done;
  check_int "cap admitted" 2 !accepted;
  check_int "excess shed" 3 !shed;
  check_int "sheds counted" 3 (Db.sheds db);
  check_int "stats agree" 3 (Db.stats db).Db.sheds;
  Db.run db;
  check_int "in-flight drained" 0 (Db.inflight db);
  (* capacity freed: submissions are admitted again *)
  (match Db.submit db (fun txn -> ignore (Table.insert t txn [| Value.Str "late"; Value.Int 9 |])) with
  | () -> ()
  | exception Db.Overloaded -> Alcotest.fail "still shedding after drain");
  Db.run db;
  check_int "admitted transactions committed" 3 (Db.committed db)

(* ------------------------------------------------------------------ *)
(* Banking invariant under concurrency *)

let test_transfers_conserve_money () =
  let db, t = accounts_db () in
  let n = 10 in
  let rids = Array.init n (fun i -> insert_account db t (Printf.sprintf "acct%d" i) 100) in
  let rng = Phoebe_util.Prng.create ~seed:7 in
  for _ = 1 to 200 do
    let from_ = rids.(Phoebe_util.Prng.int rng n) and to_ = rids.(Phoebe_util.Prng.int rng n) in
    let amount = Phoebe_util.Prng.int rng 20 in
    if from_ <> to_ then
      Db.submit ~isolation:Txnmgr.Repeatable_read db (fun txn ->
          let bal rid =
            match Table.get t txn ~rid with
            | Some row -> ( match row.(1) with Value.Int v -> v | _ -> 0)
            | None -> 0
          in
          let fb = bal from_ in
          if fb >= amount then begin
            ignore (Table.update t txn ~rid:from_ [ ("balance", Value.Int (fb - amount)) ]);
            let tb = bal to_ in
            ignore (Table.update t txn ~rid:to_ [ ("balance", Value.Int (tb + amount)) ])
          end)
  done;
  Db.run db;
  let total = Array.fold_left (fun acc rid -> acc + balance_of db t rid) 0 rids in
  check_int "money conserved" (n * 100) total

(* ------------------------------------------------------------------ *)
(* GC *)

let test_gc_reclaims_undo () =
  let db, t = accounts_db () in
  let rid = insert_account db t "gc" 0 in
  for i = 1 to 200 do
    Db.submit db (fun txn -> ignore (Table.update t txn ~rid [ ("balance", Value.Int i) ]))
  done;
  Db.run db;
  let before = balance_of db t rid in
  check_bool "some update committed" true (before >= 1 && before <= 200);
  let reclaimed = Db.gc db in
  check_bool "gc reclaimed the update history" true (reclaimed > 0);
  check_int "all undo memory released" 0 (Db.stats db).Db.undo_bytes;
  check_int "gc does not change the visible value" before (balance_of db t rid)

let test_gc_removes_deleted_tuples_from_index () =
  let db, t = accounts_db () in
  let rid = insert_account db t "purge" 0 in
  ignore (Db.with_txn db (fun txn -> Table.delete t txn ~rid));
  (* Enough committed work through fibers to trigger housekeeping GC. *)
  for i = 0 to 99 do
    Db.submit db (fun txn ->
        ignore (Table.insert t txn [| Value.Str (Printf.sprintf "filler%d" i); Value.Int 0 |]))
  done;
  Db.run db;
  ignore (Db.gc db);
  Db.with_txn db (fun txn ->
      check_bool "index entry stripped or invisible" true
        (Table.index_lookup t txn ~index:"accounts_by_owner" ~key:[ Value.Str "purge" ] = []))

(* ------------------------------------------------------------------ *)
(* Freeze *)

let test_freeze_and_read_back () =
  let db = make_db () in
  let t = Db.create_table db ~name:"history" ~schema:[ ("n", Value.T_int); ("s", Value.T_str) ] in
  Db.with_txn db (fun txn ->
      for i = 1 to 2000 do
        ignore (Table.insert t txn [| Value.Int i; Value.Str (Printf.sprintf "h%d" (i mod 7)) |])
      done);
  (* decay away the load-time heat so the prefix freezes *)
  for _ = 1 to 8 do
    Phoebe_btree.Table_tree.decay_access_counts (Table.tree t)
  done;
  let frozen = Db.freeze_tables db in
  check_bool "many tuples frozen" true (frozen > 500);
  Db.with_txn db (fun txn ->
      match Table.get t txn ~rid:1 with
      | Some row -> check_bool "frozen row readable" true (row.(0) = Value.Int 1)
      | None -> Alcotest.fail "frozen row lost");
  (* frozen rows can still be updated (out-of-place) *)
  let ok = Db.with_txn db (fun txn -> Table.update t txn ~rid:1 [ ("s", Value.Str "warmed") ]) in
  check_bool "frozen update ok" true ok;
  Db.with_txn db (fun txn ->
      let found = ref false in
      Table.scan t txn (fun _ row -> if row.(1) = Value.Str "warmed" then found := true);
      check_bool "updated version findable" true !found)

(* ------------------------------------------------------------------ *)
(* Recovery *)

let same_ddl () =
  let db = make_db () in
  let t =
    Db.create_table db ~name:"accounts"
      ~schema:[ ("owner", Value.T_str); ("balance", Value.T_int) ]
  in
  Db.create_index db t ~name:"accounts_by_owner" ~cols:[ "owner" ] ~unique:true;
  (db, t)

let test_recovery_end_to_end () =
  let db1, t1 = same_ddl () in
  let a = insert_account db1 t1 "alice" 100 in
  let b = insert_account db1 t1 "bob" 50 in
  ignore (Db.with_txn db1 (fun txn -> Table.update t1 txn ~rid:a [ ("balance", Value.Int 80) ]));
  ignore (Db.with_txn db1 (fun txn -> Table.delete t1 txn ~rid:b));
  (* an aborted transaction must not survive recovery *)
  (try
     Db.with_txn db1 (fun txn ->
         ignore (Table.insert t1 txn [| Value.Str "phantom"; Value.Int 1 |]);
         failwith "crash before commit")
   with Failure _ -> ());
  Db.checkpoint db1;
  (* "crash": build a fresh instance with identical DDL and replay. *)
  let db2, t2 = same_ddl () in
  let report = Db.replay_wal db2 ~from:(Wal.store (Db.wal db1)) in
  check_bool "some ops replayed" true (report.Phoebe_wal.Recovery.ops_replayed >= 4);
  check_int "alice recovered" 80 (balance_of db2 t2 a);
  Db.with_txn db2 (fun txn ->
      check_bool "bob stays deleted" true (Table.get t2 txn ~rid:b = None);
      check_bool "phantom absent" true
        (Table.index_lookup t2 txn ~index:"accounts_by_owner" ~key:[ Value.Str "phantom" ] = []))

let test_recovery_after_concurrent_run () =
  let db1, t1 = same_ddl () in
  let rids = Array.init 8 (fun i -> insert_account db1 t1 (Printf.sprintf "c%d" i) 100) in
  let rng = Phoebe_util.Prng.create ~seed:3 in
  for _ = 1 to 100 do
    let rid = rids.(Phoebe_util.Prng.int rng 8) in
    let amount = Phoebe_util.Prng.int rng 10 in
    Db.submit db1 (fun txn ->
        match Table.get t1 txn ~rid with
        | Some row ->
          let v = match row.(1) with Value.Int v -> v | _ -> 0 in
          ignore (Table.update t1 txn ~rid [ ("balance", Value.Int (v + amount)) ])
        | None -> ())
  done;
  Db.run db1;
  Db.checkpoint db1;
  let db2, t2 = same_ddl () in
  ignore (Db.replay_wal db2 ~from:(Wal.store (Db.wal db1)));
  Array.iter
    (fun rid -> check_int "balance identical after recovery" (balance_of db1 t1 rid) (balance_of db2 t2 rid))
    rids

let test_table_lock_blocks_dml () =
  let db, t = accounts_db () in
  let rid = insert_account db t "locked" 1 in
  let order = ref [] in
  let q = Scheduler.Waitq.create () in
  (* DDL-style transaction: exclusive table lock, holds it while parked *)
  Scheduler.submit (Db.scheduler db) (fun () ->
      Db.with_txn db (fun txn ->
          Table.lock_exclusive t txn;
          order := `Locked :: !order;
          Scheduler.Waitq.wait q;
          order := `Released :: !order));
  (* concurrent DML must wait for the exclusive holder *)
  Scheduler.submit (Db.scheduler db) (fun () ->
      Scheduler.charge Phoebe_sim.Component.Effective 100_000;
      Db.with_txn db (fun txn ->
          ignore (Table.update t txn ~rid [ ("balance", Value.Int 2) ]);
          order := `Dml :: !order));
  Phoebe_sim.Engine.schedule (Db.engine db) ~delay:1_000_000 (fun () -> Scheduler.Waitq.signal_all q);
  Db.run db;
  (match List.rev !order with
  | [ `Locked; `Released; `Dml ] -> ()
  | l -> Alcotest.failf "DML did not wait for the table lock (%d events)" (List.length l));
  check_int "dml applied after release" 2 (balance_of db t rid)

let test_table_lock_shared_dml_compatible () =
  (* plain DML transactions do not block each other on the table lock *)
  let db, t = accounts_db () in
  let a = insert_account db t "s1" 0 and b = insert_account db t "s2" 0 in
  for _ = 1 to 20 do
    Db.submit db (fun txn -> ignore (Table.update t txn ~rid:a [ ("balance", Value.Int 1) ]));
    Db.submit db (fun txn -> ignore (Table.update t txn ~rid:b [ ("balance", Value.Int 1) ]))
  done;
  Db.run db;
  check_bool "all dml committed" true (Db.committed db >= 42)

let () =
  Alcotest.run "phoebe_core"
    [
      ( "dml",
        [
          Alcotest.test_case "insert/get" `Quick test_insert_get;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "update missing" `Quick test_update_missing_row;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "multi-statement txn" `Quick test_multi_statement_txn;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "update rollback" `Quick test_abort_rolls_back_update;
          Alcotest.test_case "insert rollback" `Quick test_abort_rolls_back_insert;
          Alcotest.test_case "delete rollback" `Quick test_abort_rolls_back_delete;
        ] );
      ( "unique",
        [
          Alcotest.test_case "violation aborts" `Quick test_unique_violation_aborts;
          Alcotest.test_case "re-insert after delete" `Quick test_unique_after_delete_ok;
        ] );
      ( "index+scan",
        [
          Alcotest.test_case "lookup" `Quick test_index_lookup;
          Alcotest.test_case "prefix scan" `Quick test_index_prefix_scan;
          Alcotest.test_case "scan visibility" `Quick test_scan_visibility;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "uncommitted invisible" `Quick test_uncommitted_writes_invisible;
          Alcotest.test_case "read committed refresh" `Quick test_read_committed_sees_new_commits;
          Alcotest.test_case "repeatable read stable" `Quick test_repeatable_read_stable;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "concurrent increments" `Quick test_concurrent_increments_serialize;
          Alcotest.test_case "rr first-committer-wins" `Quick test_rr_first_committer_wins;
          Alcotest.test_case "deadlock resolved" `Quick test_deadlock_detected_and_resolved;
          Alcotest.test_case "transfers conserve money" `Quick test_transfers_conserve_money;
        ] );
      ( "table-locks",
        [
          Alcotest.test_case "exclusive blocks dml" `Quick test_table_lock_blocks_dml;
          Alcotest.test_case "shared dml compatible" `Quick test_table_lock_shared_dml_compatible;
        ] );
      ( "deadlines+admission",
        [
          Alcotest.test_case "deadline aborts stalled wait" `Quick
            test_txn_deadline_aborts_stalled_wait;
          Alcotest.test_case "no deadline, no timeouts" `Quick test_no_deadline_means_no_timeouts;
          Alcotest.test_case "admission sheds over cap" `Quick test_admission_sheds_over_cap;
        ] );
      ( "gc",
        [
          Alcotest.test_case "undo reclaimed" `Quick test_gc_reclaims_undo;
          Alcotest.test_case "deleted tuples purged" `Quick test_gc_removes_deleted_tuples_from_index;
        ] );
      ("freeze", [ Alcotest.test_case "freeze and read" `Quick test_freeze_and_read_back ]);
      ( "recovery",
        [
          Alcotest.test_case "end to end" `Quick test_recovery_end_to_end;
          Alcotest.test_case "after concurrent run" `Quick test_recovery_after_concurrent_run;
        ] );
    ]
