(* Tests for primary-standby WAL shipping: convergence, commit-boundary
   batching, update/delete ordering through the rid map, lag behaviour,
   and failover. *)
open Phoebe_core
module Repl = Phoebe_replication.Replication
module Value = Phoebe_storage.Value
module Scheduler = Phoebe_runtime.Scheduler
module Engine = Phoebe_sim.Engine
module Prng = Phoebe_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = { Config.default with Config.n_workers = 2; slots_per_worker = 4 }

let ddl db =
  let t = Db.create_table db ~name:"kv" ~schema:[ ("k", Value.T_int); ("v", Value.T_int) ] in
  Db.create_index db t ~name:"kv_pk" ~cols:[ "k" ] ~unique:true;
  t

let pair () =
  let primary = Db.create cfg in
  let standby = Db.create_on (Db.engine primary) cfg in
  let pt = ddl primary in
  let st = ddl standby in
  (primary, standby, pt, st)

let dump db t =
  Db.with_txn db (fun txn ->
      let acc = ref [] in
      Table.scan t txn (fun _ row ->
          match (row.(0), row.(1)) with
          | Value.Int k, Value.Int v -> acc := (k, v) :: !acc
          | _ -> ());
      List.sort compare !acc)

let int_of = function Value.Int v -> v | _ -> Alcotest.fail "int expected"

let test_basic_convergence () =
  let primary, standby, pt, st = pair () in
  let repl = Repl.attach ~primary ~standby () in
  for k = 1 to 50 do
    Db.submit primary (fun txn -> ignore (Table.insert pt txn [| Value.Int k; Value.Int k |]))
  done;
  (* the shipping loop schedules events forever: advance bounded virtual
     time, then stop it and drain *)
  Db.run_for primary ~ns:20_000_000;
  Repl.stop repl;
  Db.run primary;
  check_bool "bytes shipped" true (Repl.shipped_bytes repl > 0);
  Alcotest.(check (list (pair int int))) "standby converged" (dump primary pt) (dump standby st)

let test_updates_deletes_converge () =
  let primary, standby, pt, st = pair () in
  let repl = Repl.attach ~primary ~standby () in
  let rng = Prng.create ~seed:4 in
  let rids = ref [] in
  for k = 1 to 30 do
    Db.submit primary
      ~on_done:(fun () -> ())
      (fun txn -> rids := Table.insert pt txn [| Value.Int k; Value.Int 0 |] :: !rids)
  done;
  Db.run_for primary ~ns:10_000_000;
  for _ = 1 to 100 do
    let rid = List.nth !rids (Prng.int rng (List.length !rids)) in
    if Prng.int rng 10 = 0 then
      Db.submit primary (fun txn -> ignore (Table.delete pt txn ~rid))
    else
      Db.submit primary (fun txn ->
          ignore
            (Table.update_with pt txn ~rid (fun row ->
                 [ ("v", Value.Int (int_of row.(1) + 1)) ])))
  done;
  Db.run_for primary ~ns:30_000_000;
  Repl.stop repl;
  Db.run primary;
  Alcotest.(check (list (pair int int))) "mutations converged" (dump primary pt) (dump standby st)

let test_uncommitted_not_shipped () =
  let primary, standby, pt, st = pair () in
  let repl = Repl.attach ~primary ~standby () in
  (* an aborted transaction's inserts must never appear on the standby *)
  (try
     Db.with_txn primary (fun txn ->
         ignore (Table.insert pt txn [| Value.Int 666; Value.Int 666 |]);
         failwith "abort me")
   with Failure _ -> ());
  ignore (Db.with_txn primary (fun txn -> Table.insert pt txn [| Value.Int 1; Value.Int 1 |]));
  (* checkpoint flushes the WAL without draining the poll loop *)
  Phoebe_wal.Wal.flush_all (Db.wal primary) ~on_done:(fun () -> ());
  Db.run_for primary ~ns:20_000_000;
  Repl.stop repl;
  Db.run primary;
  Alcotest.(check (list (pair int int))) "only committed rows" [ (1, 1) ] (dump standby st)

let test_lag_and_catchup () =
  let primary, standby, pt, st = pair () in
  (* slow link: shipping visibly trails the primary *)
  let slow = { Repl.default_link with Repl.poll_interval_us = 5_000.0 } in
  let repl = Repl.attach ~primary ~standby ~link:slow () in
  for k = 1 to 40 do
    Db.submit primary (fun txn -> ignore (Table.insert pt txn [| Value.Int k; Value.Int k |]))
  done;
  (* immediately after the burst the standby is behind *)
  Db.run_for primary ~ns:300_000;
  let behind = List.length (dump standby st) < 40 in
  Db.run_for primary ~ns:50_000_000;
  Repl.stop repl;
  Db.run primary;
  check_bool "standby trailed during the burst" true behind;
  Alcotest.(check (list (pair int int))) "caught up afterwards" (dump primary pt) (dump standby st);
  check_int "no residual lag" 0 (Repl.lag_records repl)

let test_failover_promote () =
  let primary, standby, pt, st = pair () in
  let repl = Repl.attach ~primary ~standby () in
  for k = 1 to 20 do
    Db.submit primary (fun txn -> ignore (Table.insert pt txn [| Value.Int k; Value.Int k |]))
  done;
  Db.run_for primary ~ns:10_000_000;
  Phoebe_wal.Wal.flush_all (Db.wal primary) ~on_done:(fun () -> ());
  Db.run_for primary ~ns:1_000_000;
  (* primary "fails"; promote the standby and keep serving writes *)
  let promoted = Repl.promote repl in
  Repl.stop repl;
  Db.run_for primary ~ns:1_000_000;
  check_bool "shipping stopped" false (Repl.is_running repl);
  Alcotest.(check (list (pair int int))) "acknowledged txns survived failover" (dump primary pt)
    (dump promoted st);
  ignore (Db.with_txn promoted (fun txn -> Table.insert st txn [| Value.Int 999; Value.Int 1 |]));
  Db.with_txn promoted (fun txn ->
      match Table.index_lookup_first st txn ~index:"kv_pk" ~key:[ Value.Int 999 ] with
      | Some _ -> ()
      | None -> Alcotest.fail "promoted standby must accept writes")

let test_mismatched_engines_rejected () =
  let primary = Db.create cfg in
  let standby = Db.create cfg in
  ignore (ddl primary);
  ignore (ddl standby);
  check_bool "attach rejected" true
    (try
       ignore (Repl.attach ~primary ~standby ());
       false
     with Invalid_argument _ -> true)

(* Regression: the shipping loop must clamp decoding to the per-file
   durable frontier. Outside a fiber, commit durability waits no-op
   (loader semantics), so before the engine runs every record sits in
   the WAL buffers' volatile tail — exactly what a primary crash would
   lose. A promote at that instant must ship nothing. *)
let test_volatile_tail_withheld () =
  let primary, standby, pt, st = pair () in
  let repl = Repl.attach ~primary ~standby () in
  for k = 1 to 10 do
    Db.with_txn primary (fun txn -> ignore (Table.insert pt txn [| Value.Int k; Value.Int k |]))
  done;
  let promoted = Repl.promote repl in
  check_int "volatile tail never ships" 0 (List.length (dump promoted st))

(* Regression, fault-injected variant: with torn writes, lost and
   delayed flush acks on the WAL device, a mid-flight promote must
   leave the standby exactly equal to what crash recovery would
   reconstruct from the primary's durable WAL — every acknowledged
   transaction present, nothing from the volatile tail. *)
let test_promote_equals_crash_recovery_under_faults () =
  let faults =
    {
      Phoebe_io.Device.fault_seed = 17;
      torn_write_p = 0.05;
      lost_ack_p = 0.05;
      delayed_ack_p = 0.1;
      max_delay_ns = 200_000;
    }
  in
  let fcfg = { cfg with Config.faults = Some faults } in
  let primary = Db.create fcfg in
  let standby = Db.create_on (Db.engine primary) fcfg in
  let pt = ddl primary in
  let st = ddl standby in
  let repl = Repl.attach ~primary ~standby () in
  let acked = ref [] in
  for k = 1 to 40 do
    Db.submit primary
      ~on_done:(fun () -> acked := k :: !acked)
      (fun txn -> ignore (Table.insert pt txn [| Value.Int k; Value.Int k |]))
  done;
  (* cut over mid-flight: some commits durable, some volatile *)
  Db.run_for primary ~ns:8_000_000;
  let promoted = Repl.promote repl in
  let d = dump promoted st in
  List.iter
    (fun k -> check_bool "acknowledged key shipped" true (List.mem_assoc k d))
    !acked;
  (* the independent oracle: crash the primary (truncating its WAL to
     the durable frontier) and replay it into a fresh instance *)
  ignore (Db.crash primary);
  let oracle = Db.create_on (Db.engine primary) cfg in
  let ot = ddl oracle in
  ignore (Db.replay_wal oracle ~from:(Phoebe_wal.Wal.store (Db.wal primary)));
  Alcotest.(check (list (pair int int))) "standby == crash-recovery oracle" (dump oracle ot) d

(* Regression: promote must surface prepared-but-undecided branches
   through [decide_in_doubt] instead of silently discarding the
   withheld run. *)
let test_promote_resolves_in_doubt () =
  let primary, standby, pt, st = pair () in
  let repl = Repl.attach ~primary ~standby () in
  Db.submit primary (fun txn -> ignore (Table.insert pt txn [| Value.Int 1; Value.Int 1 |]));
  Db.run_for primary ~ns:5_000_000;
  (* a branch transaction that prepared and never hears its decision *)
  let txn = Db.begin_txn primary in
  ignore (Table.insert pt txn [| Value.Int 2; Value.Int 2 |]);
  Phoebe_txn.Txnmgr.prepare (Db.txnmgr primary) txn ~gxid:77 ~coord:1;
  Db.run_for primary ~ns:5_000_000;
  let seen = ref (-1) in
  let promoted =
    Repl.promote
      ~decide_in_doubt:(fun d ->
        seen := d.Phoebe_wal.Recovery.gxid;
        true)
      repl
  in
  check_int "in-doubt branch surfaced with its gxid" 77 !seen;
  Alcotest.(check (list (pair int int)))
    "decided-commit branch applied at cutover"
    [ (1, 1); (2, 2) ]
    (dump promoted st)

(* Regression: repl.lag_records froze at stop/promote. The primary
   keeps committing after detach; a live gauge would drift stale (and
   go negative after a primary crash rewinds the WAL). *)
let test_gauges_freeze_at_detach () =
  let primary, standby, pt, _st = pair () in
  let repl = Repl.attach ~primary ~standby () in
  for k = 1 to 20 do
    Db.submit primary (fun txn -> ignore (Table.insert pt txn [| Value.Int k; Value.Int k |]))
  done;
  Db.run_for primary ~ns:20_000_000;
  Repl.stop repl;
  let frozen = Repl.lag_records repl in
  check_bool "frozen lag is non-negative" true (frozen >= 0);
  for k = 21 to 40 do
    Db.submit primary (fun txn -> ignore (Table.insert pt txn [| Value.Int k; Value.Int k |]))
  done;
  Db.run_for primary ~ns:20_000_000;
  check_int "lag gauge frozen at detach value" frozen (Repl.lag_records repl)

let () =
  Alcotest.run "phoebe_replication"
    [
      ( "shipping",
        [
          Alcotest.test_case "basic convergence" `Quick test_basic_convergence;
          Alcotest.test_case "updates and deletes" `Quick test_updates_deletes_converge;
          Alcotest.test_case "uncommitted withheld" `Quick test_uncommitted_not_shipped;
          Alcotest.test_case "lag and catch-up" `Quick test_lag_and_catchup;
          Alcotest.test_case "volatile tail withheld" `Quick test_volatile_tail_withheld;
          Alcotest.test_case "promote == crash recovery under faults" `Quick
            test_promote_equals_crash_recovery_under_faults;
        ] );
      ( "failover",
        [
          Alcotest.test_case "promote" `Quick test_failover_promote;
          Alcotest.test_case "engine mismatch" `Quick test_mismatched_engines_rejected;
          Alcotest.test_case "promote resolves in-doubt" `Quick test_promote_resolves_in_doubt;
          Alcotest.test_case "gauges freeze at detach" `Quick test_gauges_freeze_at_detach;
        ] );
    ]
