(* Observability plane: registry semantics, trace-span accounting
   (phase times telescope to wall time), spans-on/off transparency, and
   the allocation-free guarantee for hot-path metric updates. *)
open Phoebe_core
module Obs = Phoebe_obs.Obs
module Trace = Phoebe_obs.Trace
module T = Phoebe_tpcc.Tpcc
module Counters = Phoebe_sim.Counters
module Scheduler = Phoebe_runtime.Scheduler
module Stats = Phoebe_util.Stats
module Phoebe_error = Phoebe_util.Phoebe_error
module Json = Phoebe_util.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Registry semantics *)

let test_registry_idempotent () =
  let reg = Obs.create () in
  let c1 = Obs.counter reg "a.count" in
  Obs.Counter.add c1 5;
  let c2 = Obs.counter reg "a.count" in
  check_bool "same handle returned" true (c1 == c2);
  check_int "state preserved" 5 (Obs.Counter.get c2);
  let h1 = Obs.histogram reg "a.hist" in
  check_bool "same hist handle" true (h1 == Obs.histogram reg "a.hist");
  let raises_bug f =
    match f () with
    | _ -> false
    | exception Phoebe_error.Bug { subsystem = "obs"; _ } -> true
  in
  check_bool "kind mismatch raises Bug" true (raises_bug (fun () -> Obs.gauge reg "a.count"));
  check_bool "fn over push-metric raises Bug" true
    (raises_bug (fun () -> Obs.int_fn reg "a.hist" (fun () -> 0)))

let test_snapshot_and_diff () =
  let reg = Obs.create () in
  let c = Obs.counter reg "z.late" in
  let g = Obs.gauge reg "b.gauge" in
  Obs.int_fn reg "m.pull" (fun () -> 42);
  Obs.add_collector reg (fun () -> [ ("k.collected", Obs.Int 7) ]);
  Obs.Counter.add c 10;
  Obs.Gauge.set g 1.5;
  let older = Obs.snapshot reg in
  let names = List.map fst older in
  check_bool "snapshot sorted by name" true (names = List.sort String.compare names);
  check_bool "collector entry present" true (List.mem_assoc "k.collected" older);
  check_bool "pull fn read" true (List.assoc "m.pull" older = Obs.Int 42);
  Obs.Counter.add c 3;
  Obs.Gauge.set g 4.0;
  let d = Obs.diff ~older ~newer:(Obs.snapshot reg) in
  check_bool "counter diffed" true (List.assoc "z.late" d = Obs.Int 3);
  check_bool "gauge diffed" true (List.assoc "b.gauge" d = Obs.Float 2.5)

(* ------------------------------------------------------------------ *)
(* Trace spans over a real workload *)

let tiny_scale =
  {
    T.districts_per_warehouse = 3;
    customers_per_district = 20;
    items = 100;
    initial_orders_per_district = 10;
  }

let small_cfg = { Config.default with Config.n_workers = 2; slots_per_worker = 4 }

let run_small ~spans ~seed =
  let db = Db.create { small_cfg with Config.spans } in
  let t = T.load db ~warehouses:2 ~scale:tiny_scale ~seed:7 () in
  let committed0 = Db.committed db in
  ignore (T.run_mix t ~concurrency:8 ~duration_ns:300_000_000 ~seed ());
  (db, Db.committed db - committed0)

let all_phases = [ Trace.Execute; Trace.Lock_wait; Trace.Io_wait; Trace.Wal_wait ]

let test_span_phases_sum_to_wall () =
  let db, committed = run_small ~spans:true ~seed:3 in
  let tr = match Db.trace db with Some tr -> tr | None -> Alcotest.fail "trace missing" in
  let finished_total = ref 0 in
  let committed_total = ref 0 in
  for kind = 0 to Trace.max_kinds - 1 do
    finished_total := !finished_total + Trace.finished tr ~kind;
    committed_total := !committed_total + Trace.committed tr ~kind;
    let phase_sum =
      List.fold_left (fun acc p -> acc +. Trace.phase_ns tr ~kind p) 0.0 all_phases
    in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "kind %d phases sum to wall time" kind)
      (Trace.total_ns tr ~kind) phase_sum;
    check_int
      (Printf.sprintf "kind %d hist count = finished" kind)
      (Trace.finished tr ~kind)
      (Stats.Histogram.count (Trace.total_hist tr ~kind))
  done;
  check_bool "spans were recorded" true (!finished_total > 0);
  check_int "committed spans = committed txns" committed !committed_total;
  (* every TPC-C kind in the mix ran and was labelled *)
  List.iter
    (fun kind -> check_bool (Trace.kind_name tr kind ^ " spans seen") true (Trace.finished tr ~kind > 0))
    [ 1; 2; 3; 4; 5 ];
  check_bool "new_order label installed" true (Trace.kind_name tr 1 = "new_order");
  (* the registry export carries the span summaries and parses as JSON *)
  let snap = Obs.snapshot (Db.obs db) in
  check_bool "span wait export present" true (List.mem_assoc "trace.txn.new_order.lock_wait_ns" snap);
  (match List.assoc_opt "trace.txn.new_order.total_ns" snap with
  | Some (Obs.Hist h) -> check_bool "latency p99 >= p50" true (h.p99 >= h.p50 && h.p50 > 0.0)
  | _ -> Alcotest.fail "trace.txn.new_order.total_ns missing or not a histogram");
  match Json.of_string (Json.to_string (Obs.to_json (Db.obs db))) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("registry export is not valid JSON: " ^ msg)

let test_spans_transparent () =
  let db_on, committed_on = run_small ~spans:true ~seed:11 in
  let db_off, committed_off = run_small ~spans:false ~seed:11 in
  check_bool "spans off means no tracer" true (Db.trace db_off = None);
  check_int "same committed" committed_on committed_off;
  check_int "same virtual clock" (Db.now db_on) (Db.now db_off);
  Alcotest.(check (array int))
    "same per-component instruction counts"
    (Counters.snapshot (Scheduler.counters (Db.scheduler db_off)))
    (Counters.snapshot (Scheduler.counters (Db.scheduler db_on)))

(* ------------------------------------------------------------------ *)
(* Hot-path updates must not allocate *)

let test_hot_path_alloc_free () =
  let c = Obs.Counter.create () in
  let g = Obs.Gauge.create () in
  let h = Stats.Histogram.create () in
  let tr = Trace.create ~n_slots:2 () in
  let exercise n =
    Trace.begin_span tr ~slot:0 ~now:0;
    Trace.set_kind tr ~slot:0 1;
    for i = 1 to n do
      Obs.Counter.incr c;
      Obs.Counter.add c 3;
      Obs.Gauge.set g 1.5;
      Stats.Histogram.add h i;
      Trace.suspend tr ~slot:0 Trace.Io_wait ~now:i;
      Trace.resume tr ~slot:0 ~now:i
    done
  in
  exercise 100 (* warm up: one-time lazy setup outside the measurement *);
  let w0 = Gc.minor_words () in
  exercise 10_000;
  let w1 = Gc.minor_words () in
  let words = int_of_float (w1 -. w0) in
  check_bool
    (Printf.sprintf "60k probe firings allocated %d minor words (<= 256 allowed)" words)
    true (words <= 256)

let () =
  Alcotest.run "phoebe obs"
    [
      ( "registry",
        [
          Alcotest.test_case "idempotent registration" `Quick test_registry_idempotent;
          Alcotest.test_case "snapshot and diff" `Quick test_snapshot_and_diff;
        ] );
      ( "spans",
        [
          Alcotest.test_case "phases sum to wall time" `Quick test_span_phases_sum_to_wall;
          Alcotest.test_case "on/off transparency" `Quick test_spans_transparent;
        ] );
      ("alloc", [ Alcotest.test_case "hot path allocation-free" `Quick test_hot_path_alloc_free ]);
    ]
