(* Quickstart: create a database, a table with a unique index, run
   transactions (including rollback and crash recovery), and read the
   kernel statistics.

   Run with: dune exec examples/quickstart.exe *)
open Phoebe_core
module Value = Phoebe_storage.Value

let print_user db users rid =
  Db.with_txn db (fun txn ->
      match Table.get users txn ~rid with
      | Some row ->
        Printf.printf "  rid=%d  name=%s  karma=%s\n" rid
          (Value.to_string row.(0))
          (Value.to_string row.(1))
      | None -> Printf.printf "  rid=%d  <not visible>\n" rid)

let () =
  print_endline "== PhoebeDB quickstart ==";
  (* A Db bundles the simulated NVMe devices, the co-routine runtime,
     the buffer pool, the parallel WAL and the MVCC transaction manager. *)
  let db = Db.create Config.default in

  (* DDL *)
  let users =
    Db.create_table db ~name:"users" ~schema:[ ("name", Value.T_str); ("karma", Value.T_int) ]
  in
  Db.create_index db users ~name:"users_by_name" ~cols:[ "name" ] ~unique:true;

  (* Transactions: everything inside with_txn commits atomically. *)
  let alice =
    Db.with_txn db (fun txn -> Table.insert users txn [| Value.Str "alice"; Value.Int 10 |])
  in
  let bob =
    Db.with_txn db (fun txn -> Table.insert users txn [| Value.Str "bob"; Value.Int 3 |])
  in
  print_endline "after inserts:";
  print_user db users alice;
  print_user db users bob;

  (* Atomic read-modify-write (SQL UPDATE semantics). *)
  ignore
    (Db.with_txn db (fun txn ->
         Table.update_with users txn ~rid:alice (fun row ->
             match row.(1) with
             | Value.Int k -> [ ("karma", Value.Int (k + 5)) ]
             | _ -> [])));

  (* Point lookup through the secondary index. *)
  Db.with_txn db (fun txn ->
      match Table.index_lookup_first users txn ~index:"users_by_name" ~key:[ Value.Str "alice" ] with
      | Some (_, row) ->
        Printf.printf "index lookup: alice has karma %s\n" (Value.to_string row.(1))
      | None -> print_endline "alice not found?!");

  (* A failed transaction rolls back everything it did. *)
  (try
     Db.with_txn db (fun txn ->
         ignore (Table.update users txn ~rid:bob [ ("karma", Value.Int 1000) ]);
         failwith "changed my mind")
   with Failure _ -> print_endline "transaction aborted; bob's karma is unchanged:");
  print_user db users bob;

  (* Unique constraints are enforced against the live row set. *)
  (try
     ignore
       (Db.with_txn db (fun txn -> Table.insert users txn [| Value.Str "alice"; Value.Int 0 |]))
   with Phoebe_txn.Txnmgr.Abort (_, msg) -> Printf.printf "duplicate insert rejected: %s\n" msg);

  (* Crash recovery: replay the WAL into a fresh instance. *)
  Db.checkpoint db;
  let db2 = Db.create Config.default in
  let users2 =
    Db.create_table db2 ~name:"users" ~schema:[ ("name", Value.T_str); ("karma", Value.T_int) ]
  in
  Db.create_index db2 users2 ~name:"users_by_name" ~cols:[ "name" ] ~unique:true;
  let report = Db.replay_wal db2 ~from:(Phoebe_wal.Wal.store (Db.wal db)) in
  Printf.printf "recovery: %d committed txns replayed, %d ops (uncommitted dropped: %d)\n"
    report.Phoebe_wal.Recovery.committed_txns report.Phoebe_wal.Recovery.ops_replayed
    report.Phoebe_wal.Recovery.ops_dropped;
  print_endline "after recovery:";
  print_user db2 users2 alice;
  print_user db2 users2 bob;

  let s = Db.stats db in
  Printf.printf "stats: %d committed, %d aborted, %d WAL records (%d bytes), RFA local=%d remote=%d\n"
    s.Db.committed s.Db.aborted s.Db.wal_records s.Db.wal_bytes s.Db.rfa_local_commits
    s.Db.rfa_remote_waits
