(* High availability with quorum replication (the paper's future-work
   item 2): a three-node group — one primary, two replicas — where a
   commit is acknowledged only once a majority of the group holds it
   durably. The primary is then killed mid-run; the surviving replicas
   detect the silence, elect the one with the longest durable stream
   prefix, and the group keeps serving with every acknowledged commit
   intact. Replicas also serve bounded-staleness reads.

   Run with: dune exec examples/ha_failover.exe *)
open Phoebe_core
module Quorum = Phoebe_replication.Quorum
module Value = Phoebe_storage.Value

let () =
  print_endline "== quorum replication with automated failover ==";
  let cfg = { Config.default with Config.n_workers = 4; slots_per_worker = 8 } in
  let ddl db =
    let t =
      Db.create_table db ~name:"orders"
        ~schema:[ ("customer", Value.T_int); ("total", Value.T_float); ("status", Value.T_str) ]
    in
    Db.create_index db t ~name:"orders_by_customer" ~cols:[ "customer" ] ~unique:false
  in
  let q = Quorum.create cfg ~ddl in
  Printf.printf "group: %d nodes, majority %d, node 0 primary of view %d\n" (Quorum.nodes q)
    (Quorum.majority q) (Quorum.view q);

  let count db =
    let t = Db.table db "orders" in
    Db.with_txn db (fun txn ->
        let n = ref 0 in
        Table.scan t txn (fun _ _ -> incr n);
        !n)
  in
  let rng = Phoebe_util.Prng.create ~seed:12 in
  let acked = ref 0 in
  let submit db n =
    for _ = 1 to n do
      Db.submit db
        ~on_done:(fun () -> incr acked)
        (fun txn ->
          ignore
            (Table.insert (Db.table db "orders") txn
               [|
                 Value.Int (Phoebe_util.Prng.int rng 50);
                 Value.Float (float_of_int (Phoebe_util.Prng.int rng 10_000) /. 100.0);
                 Value.Str "placed";
               |]))
    done
  in
  let prim = Option.get (Quorum.primary_db q) in
  submit prim 500;
  Quorum.run_for q ~ns:80_000_000;
  Printf.printf "primary served %d quorum-acknowledged commits; replicas mirror %d / %d rows\n"
    !acked
    (count (Quorum.db q ~node:1))
    (count prim);

  (* a replica serves reads within the staleness bound *)
  let fresh =
    Quorum.follower_read q ~node:1 (fun txn ->
        let t = Db.table (Quorum.db q ~node:1) "orders" in
        let n = ref 0 in
        Table.scan t txn (fun _ _ -> incr n);
        !n)
  in
  Printf.printf "follower read on node 1 (staleness %.1f us): %d rows\n"
    (float_of_int (Quorum.staleness_ns q ~node:1) /. 1e3)
    fresh;

  (* ---- the primary dies; nobody presses any buttons ---- *)
  print_endline "\n-- killing the primary: the group elects a successor on its own --";
  Quorum.kill q ~node:0;
  Quorum.run_for q ~ns:40_000_000;
  let p = Option.get (Quorum.primary q) in
  Printf.printf "node %d won the view-%d election with the longest durable prefix\n" p
    (Quorum.view q);
  Printf.printf "new primary holds %d rows (every acknowledged commit survived)\n"
    (count (Quorum.db q ~node:p));

  (* the new primary accepts quorum-replicated writes immediately *)
  let before = !acked in
  submit (Quorum.db q ~node:p) 50;
  Quorum.run_for q ~ns:40_000_000;
  Printf.printf "new primary acknowledged %d more commits in view %d; group is healthy\n"
    (!acked - before) (Quorum.view q);
  Quorum.shutdown q
