(* Sharded scale-out: a 4-shard cluster on one simulated box, serving a
   mix of single-shard deposits and cross-shard transfers. Local
   transactions commit on their home shard alone; a transfer touches two
   shards and goes through two-phase commit over the simulated fabric
   (prepare -> votes -> coordinator commit = the durable decision ->
   decide messages).

   Run with: dune exec examples/sharded_cluster.exe *)
open Phoebe_core
module Cluster = Phoebe_shard.Cluster
module Net = Phoebe_shard.Net
module Value = Phoebe_storage.Value
module Prng = Phoebe_util.Prng

let shards = 4
let accounts_per_shard = 100

(* account ids are dense; routing is id / accounts_per_shard *)
let shard_of_account id = id / accounts_per_shard
let local_id id = id mod accounts_per_shard

let () =
  print_endline "== 4-shard cluster: local deposits + cross-shard transfers ==";
  let eng = Phoebe_sim.Engine.create () in
  let cfg = { Config.default with Config.n_workers = 2; slots_per_worker = 8 } in
  let cl = Cluster.create eng ~shards cfg in
  (* same DDL on every shard: a partition of the accounts table *)
  for k = 0 to shards - 1 do
    let db = Cluster.shard cl k in
    let t =
      Db.create_table db ~name:"accounts"
        ~schema:[ ("id", Value.T_int); ("balance", Value.T_int) ]
    in
    Db.create_index db t ~name:"accounts_pk" ~cols:[ "id" ] ~unique:true
  done;
  (* seed rows (bulk load, outside the simulation) *)
  for k = 0 to shards - 1 do
    let db = Cluster.shard cl k in
    Db.with_txn db (fun txn ->
        for i = 0 to accounts_per_shard - 1 do
          ignore (Table.insert (Db.table db "accounts") txn [| Value.Int i; Value.Int 1_000 |])
        done)
  done;

  (* the remote half of a transfer, installed on every shard *)
  let credit ~shard:_ db txn args =
    let t = Db.table db "accounts" in
    (match Table.index_lookup_first t txn ~index:"accounts_pk" ~key:[ args.(0) ] with
    | Some (rid, _) ->
      let amount = match args.(1) with Value.Int a -> a | _ -> assert false in
      ignore
        (Table.update_with t txn ~rid (fun row ->
             match row.(1) with
             | Value.Int b -> [ ("balance", Value.Int (b + amount)) ]
             | _ -> assert false))
    | None -> raise (Phoebe_txn.Txnmgr.Abort (Phoebe_txn.Txnmgr.User, "no such account")));
    [||]
  in
  let credit_proc = Cluster.register_proc cl credit in

  let rng = Prng.create ~seed:7 in
  let transfers = ref 0 in
  (* 2000 arrivals paced at 2000/s of virtual time — a sustained load,
     not a thundering herd against the 10 ms message timeout *)
  for i = 1 to 2_000 do
    let src = Prng.int rng (shards * accounts_per_shard) in
    let home = shard_of_account src in
    let at = i * 500_000 in
    if Prng.float rng 1.0 < 0.10 then begin
      (* cross-shard transfer: debit at home, credit on another shard *)
      incr transfers;
      let dst = (src + accounts_per_shard + Prng.int rng accounts_per_shard) mod (shards * accounts_per_shard) in
      Phoebe_sim.Engine.schedule eng ~delay:at (fun () ->
      Cluster.submit_dtxn cl ~home (fun dtx ->
          let db = Cluster.shard cl home in
          let txn = Cluster.dtxn_txn dtx in
          let t = Db.table db "accounts" in
          (match
             Table.index_lookup_first t txn ~index:"accounts_pk" ~key:[ Value.Int (local_id src) ]
           with
          | Some (rid, _) ->
            ignore
              (Table.update_with t txn ~rid (fun row ->
                   match row.(1) with
                   | Value.Int b -> [ ("balance", Value.Int (b - 10)) ]
                   | _ -> assert false))
          | None -> assert false);
          ignore
            (Cluster.remote_exec cl dtx ~shard:(shard_of_account dst) ~proc:credit_proc
               ~args:[| Value.Int (local_id dst); Value.Int 10 |])))
    end
    else
      (* single-shard deposit: no protocol, plain local commit *)
      Phoebe_sim.Engine.schedule eng ~delay:at (fun () ->
      Cluster.submit_local cl ~shard:home (fun txn ->
          let db = Cluster.shard cl home in
          let t = Db.table db "accounts" in
          match
            Table.index_lookup_first t txn ~index:"accounts_pk" ~key:[ Value.Int (local_id src) ]
          with
          | Some (rid, _) ->
            ignore
              (Table.update_with t txn ~rid (fun row ->
                   match row.(1) with
                   | Value.Int b -> [ ("balance", Value.Int (b + 1)) ]
                   | _ -> assert false))
          | None -> assert false))
  done;
  Cluster.run cl;

  print_endline "\n-- per-shard throughput --";
  let total_committed = ref 0 in
  for k = 0 to shards - 1 do
    let db = Cluster.shard cl k in
    let s = Db.stats db in
    total_committed := !total_committed + s.Db.committed;
    Printf.printf "  shard %d: %5d committed  %3d aborted  cpu %4.1f%%  wal %d KB\n" k
      s.Db.committed s.Db.aborted
      (100.0 *. s.Db.cpu_busy_fraction)
      (s.Db.wal_durable_bytes / 1024)
  done;

  let s = Cluster.stats cl in
  Printf.printf "\n-- cluster --\n";
  Printf.printf "  committed (all shards)     %d\n" !total_committed;
  Printf.printf "  cross-shard offered        %d\n" !transfers;
  Printf.printf "  2PC started / committed    %d / %d\n" s.Cluster.started s.Cluster.committed;
  Printf.printf "  2PC aborted                %d\n" s.Cluster.aborted;
  Printf.printf "  branches prepared          %d\n" s.Cluster.branches_prepared;
  Printf.printf "  branches committed         %d\n" s.Cluster.branches_committed;
  Printf.printf "  network messages / bytes   %d / %d\n" (Net.msgs (Cluster.net cl))
    (Net.bytes (Cluster.net cl));

  (* money conservation: every debit matched by a credit *)
  let total_balance = ref 0 in
  for k = 0 to shards - 1 do
    let db = Cluster.shard cl k in
    Db.with_txn db (fun txn ->
        Table.scan (Db.table db "accounts") txn (fun _ row ->
            match row.(1) with Value.Int b -> total_balance := !total_balance + b | _ -> ()))
  done;
  (* every shard's committed count includes its seed txn, its deposits,
     and — for cross-shard transfers — one commit at the coordinator and
     one per branch; transfers move money but never create it *)
  let deposits = !total_committed - shards - (2 * s.Cluster.committed) in
  Printf.printf "\n  total balance %d (seeded %d + %d committed deposits; transfers conserve)\n"
    !total_balance
    (shards * accounts_per_shard * 1_000)
    deposits;
  assert (!total_balance = (shards * accounts_per_shard * 1_000) + deposits)
