(* Tests for the table B-tree (row_id keyed, PAX leaves, temperature
   tiers) and the secondary index tree. *)
open Phoebe_btree
module Value = Phoebe_storage.Value
module Pax = Phoebe_storage.Pax
module Bufmgr = Phoebe_storage.Bufmgr
module Engine = Phoebe_sim.Engine
module Device = Phoebe_io.Device
module Pagestore = Phoebe_io.Pagestore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let value_eq : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Value.pp fmt v) Value.equal

let schema = Value.Schema.make [ ("k", Value.T_int); ("v", Value.T_str) ]
let row k s = [| Value.Int k; Value.Str s |]

let pax_codec : Pax.t Bufmgr.codec =
  { Bufmgr.encode = Pax.encode; decode = Pax.decode; size = Pax.size_bytes }

let make_tree ?(leaf_capacity = 8) ?(budget = 100_000_000) () =
  let eng = Engine.create () in
  let data_dev = Device.create eng ~name:"data" Device.pm9a3 in
  let block_dev = Device.create eng ~name:"blocks" Device.pm9a3 in
  let buf =
    Bufmgr.create eng ~store:(Pagestore.create data_dev) ~partitions:1 ~budget_bytes:budget
      ~codec:pax_codec
  in
  Table_tree.create ~name:"t" ~schema ~buf ~block_store:(Pagestore.create block_dev)
    ~leaf_capacity ()

(* ------------------------------------------------------------------ *)
(* Table tree *)

let test_tt_append_read () =
  let t = make_tree () in
  let rids = List.init 100 (fun i -> Table_tree.append t (row i (Printf.sprintf "v%d" i))) in
  Alcotest.(check (list int)) "row ids are sequential" (List.init 100 (fun i -> i + 1)) rids;
  List.iteri
    (fun i rid ->
      match Table_tree.read t ~row_id:rid with
      | Some r -> Alcotest.check (Alcotest.array value_eq) "tuple" (row i (Printf.sprintf "v%d" i)) r
      | None -> Alcotest.failf "row %d missing" rid)
    rids

let test_tt_many_leaves () =
  let t = make_tree ~leaf_capacity:4 () in
  for i = 1 to 1000 do
    ignore (Table_tree.append t (row i "x"))
  done;
  check_bool "many leaves" true (Table_tree.leaf_count t > 200);
  check_int "all readable" 1000
    (List.length (List.filter (fun rid -> Table_tree.read t ~row_id:rid <> None) (List.init 1000 (fun i -> i + 1))))

let test_tt_absent_rids () =
  let t = make_tree () in
  ignore (Table_tree.append t (row 1 "a"));
  check_bool "rid 0" true (Table_tree.read t ~row_id:0 = None);
  check_bool "future rid" true (Table_tree.read t ~row_id:99 = None);
  check_bool "negative rid" true (Table_tree.read t ~row_id:(-5) = None)

let test_tt_delete () =
  let t = make_tree () in
  let rid = Table_tree.append t (row 1 "a") in
  check_bool "delete" true (Table_tree.mark_deleted t ~row_id:rid);
  check_bool "double delete" false (Table_tree.mark_deleted t ~row_id:rid);
  check_bool "read deleted" true (Table_tree.read t ~row_id:rid = None);
  check_bool "is_deleted" true (Table_tree.is_deleted t ~row_id:rid);
  check_int "live count" 0 (Table_tree.tuple_count_estimate t)

let test_tt_scan_order () =
  let t = make_tree ~leaf_capacity:4 () in
  for i = 1 to 50 do
    ignore (Table_tree.append t (row i "x"))
  done;
  ignore (Table_tree.mark_deleted t ~row_id:10);
  let seen = ref [] in
  Table_tree.scan t (fun rid _ -> seen := rid :: !seen);
  let expected = List.filter (fun r -> r <> 10) (List.init 50 (fun i -> i + 1)) in
  Alcotest.(check (list int)) "in order, skipping deleted" expected (List.rev !seen);
  (* bounded scan *)
  let seen = ref [] in
  Table_tree.scan t ~from_rid:20 ~to_rid:25 (fun rid _ -> seen := rid :: !seen);
  Alcotest.(check (list int)) "bounded" [ 20; 21; 22; 23; 24; 25 ] (List.rev !seen)

let test_tt_freeze_prefix () =
  let t = make_tree ~leaf_capacity:4 () in
  for i = 1 to 40 do
    ignore (Table_tree.append t (row i (Printf.sprintf "s%d" (i mod 3))))
  done;
  ignore (Table_tree.mark_deleted t ~row_id:3);
  let frozen = Table_tree.freeze_prefix t ~up_to_rid:20 in
  check_int "tuples frozen (minus deleted)" 19 frozen;
  check_bool "max_frozen advanced" true (Table_tree.max_frozen_row_id t >= 19);
  check_bool "blocks created" true (Table_tree.frozen_block_count t > 0);
  (* Reads hit the frozen tier transparently. *)
  (match Table_tree.read t ~row_id:5 with
  | Some r -> Alcotest.check (Alcotest.array value_eq) "frozen read" (row 5 "s2") r
  | None -> Alcotest.fail "frozen row unreadable");
  check_bool "deleted row stays deleted" true (Table_tree.read t ~row_id:3 = None);
  (* Unfrozen rows still readable. *)
  check_bool "hot read" true (Table_tree.read t ~row_id:30 <> None);
  (* Scan crosses the tier boundary in order. *)
  let seen = ref [] in
  Table_tree.scan t (fun rid _ -> seen := rid :: !seen);
  let expected = List.filter (fun r -> r <> 3) (List.init 40 (fun i -> i + 1)) in
  Alcotest.(check (list int)) "scan across tiers" expected (List.rev !seen);
  check_bool "compression > 1" true (Table_tree.compression_ratio t > 1.0)

let test_tt_freeze_then_delete_frozen () =
  let t = make_tree ~leaf_capacity:4 () in
  for i = 1 to 20 do
    ignore (Table_tree.append t (row i "x"))
  done;
  ignore (Table_tree.freeze_prefix t ~up_to_rid:12);
  check_bool "delete frozen row" true (Table_tree.mark_deleted t ~row_id:5);
  check_bool "frozen row gone" true (Table_tree.read t ~row_id:5 = None)

let test_tt_warm_row () =
  let t = make_tree ~leaf_capacity:4 () in
  for i = 1 to 20 do
    ignore (Table_tree.append t (row i (Printf.sprintf "w%d" i)))
  done;
  ignore (Table_tree.freeze_prefix t ~up_to_rid:12);
  let live_before = Table_tree.tuple_count_estimate t in
  (match Table_tree.warm_row t ~row_id:7 with
  | Some new_rid ->
    check_bool "new rid is fresh" true (new_rid > 20);
    check_bool "old rid deleted" true (Table_tree.read t ~row_id:7 = None);
    (match Table_tree.read t ~row_id:new_rid with
    | Some r -> Alcotest.check (Alcotest.array value_eq) "content preserved" (row 7 "w7") r
    | None -> Alcotest.fail "warmed row unreadable")
  | None -> Alcotest.fail "warm_row failed");
  check_int "live tuple count unchanged" live_before (Table_tree.tuple_count_estimate t);
  check_bool "warm of unfrozen row is None" true (Table_tree.warm_row t ~row_id:15 = None)

let test_tt_freeze_cold_prefix_respects_access () =
  let t = make_tree ~leaf_capacity:4 () in
  for i = 1 to 32 do
    ignore (Table_tree.append t (row i "x"))
  done;
  (* Loading touched every leaf; decay the counters to zero first, as the
     housekeeping task does over time, then heat one leaf. *)
  for _ = 1 to 6 do
    Table_tree.decay_access_counts t
  done;
  (* Touch rows 9..12 (third leaf) to heat that leaf. *)
  for _ = 1 to 10 do
    for rid = 9 to 12 do
      ignore (Table_tree.read t ~row_id:rid)
    done
  done;
  let frozen = Table_tree.freeze_cold_prefix t ~max_access:3 in
  check_int "freezes only the cold prefix (2 leaves)" 8 frozen;
  check_bool "hot leaf not frozen" true (Table_tree.max_frozen_row_id t < 9)

let test_tt_eviction_cold_reads () =
  (* Tiny buffer: leaves spill to the data page file and fault back. *)
  let t = make_tree ~leaf_capacity:4 ~budget:2048 () in
  for i = 1 to 200 do
    ignore (Table_tree.append t (row i (Printf.sprintf "payload-%d" i)))
  done;
  (* All rows must still be readable through cold faults. *)
  let ok = ref 0 in
  for rid = 1 to 200 do
    match Table_tree.read t ~row_id:rid with
    | Some r when Value.equal r.(0) (Value.Int rid) -> incr ok
    | _ -> ()
  done;
  check_int "all rows readable with tiny buffer" 200 !ok

let test_tt_scan_with_rid_gaps () =
  (* Row-id gaps (aborted inserts, recovery replay) must not stop scans
     at leaf boundaries. *)
  let t = make_tree ~leaf_capacity:4 () in
  let rids = [ 1; 2; 3; 4; 10; 11; 12; 13; 30; 31 ] in
  List.iter (fun rid -> Table_tree.append_exact t ~row_id:rid (row rid "g")) rids;
  let seen = ref [] in
  Table_tree.scan t (fun rid _ -> seen := rid :: !seen);
  Alcotest.(check (list int)) "all rows across gaps" rids (List.rev !seen)

(* Model-based: random appends / deletes / reads against a Hashtbl. *)
let test_tt_model_random_ops () =
  let rng = Phoebe_util.Prng.create ~seed:99 in
  let t = make_tree ~leaf_capacity:4 () in
  let model : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let live = ref [] in
  for step = 1 to 2000 do
    match Phoebe_util.Prng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      let s = Printf.sprintf "s%d" step in
      let rid = Table_tree.append t (row step s) in
      Hashtbl.replace model rid s;
      live := rid :: !live
    | 4 | 5 -> (
      match !live with
      | [] -> ()
      | rid :: rest ->
        live := rest;
        ignore (Table_tree.mark_deleted t ~row_id:rid);
        Hashtbl.remove model rid)
    | _ -> (
      let rid = 1 + Phoebe_util.Prng.int rng (step + 1) in
      match (Table_tree.read t ~row_id:rid, Hashtbl.find_opt model rid) with
      | Some r, Some s ->
        if not (Value.equal r.(1) (Value.Str s)) then Alcotest.failf "mismatch at rid %d" rid
      | None, None -> ()
      | Some _, None -> Alcotest.failf "tree has rid %d, model does not" rid
      | None, Some _ -> Alcotest.failf "model has rid %d, tree does not" rid)
  done;
  check_int "live counts agree" (Hashtbl.length model) (Table_tree.tuple_count_estimate t)

(* ------------------------------------------------------------------ *)
(* Index tree *)

let key_of_int i =
  Index_tree.encode_key [ Value.Int i ]

let test_ix_insert_lookup () =
  let ix = Index_tree.create ~name:"ix" ~unique:true () in
  for i = 1 to 500 do
    Index_tree.insert ix ~key:(key_of_int i) ~rid:(i * 10)
  done;
  check_int "count" 500 (Index_tree.count ix);
  check_bool "depth grew" true (Index_tree.depth ix > 1);
  for i = 1 to 500 do
    check_bool "lookup" true (Index_tree.lookup_first ix ~key:(key_of_int i) = Some (i * 10))
  done;
  check_bool "absent" true (Index_tree.lookup_first ix ~key:(key_of_int 501) = None)

let test_ix_unique_violation () =
  let ix = Index_tree.create ~name:"ix" ~unique:true () in
  Index_tree.insert ix ~key:"k" ~rid:1;
  Alcotest.check_raises "duplicate" (Index_tree.Duplicate_key "k") (fun () ->
      Index_tree.insert ix ~key:"k" ~rid:2)

let test_ix_non_unique () =
  let ix = Index_tree.create ~name:"ix" ~unique:false () in
  Index_tree.insert ix ~key:"a" ~rid:3;
  Index_tree.insert ix ~key:"a" ~rid:1;
  Index_tree.insert ix ~key:"a" ~rid:2;
  Index_tree.insert ix ~key:"b" ~rid:9;
  Alcotest.(check (list int)) "rids ascending" [ 1; 2; 3 ] (Index_tree.lookup ix ~key:"a");
  Alcotest.(check (list int)) "other key" [ 9 ] (Index_tree.lookup ix ~key:"b")

let test_ix_delete () =
  let ix = Index_tree.create ~name:"ix" ~unique:false () in
  Index_tree.insert ix ~key:"a" ~rid:1;
  Index_tree.insert ix ~key:"a" ~rid:2;
  check_bool "delete existing" true (Index_tree.delete ix ~key:"a" ~rid:1);
  check_bool "delete absent" false (Index_tree.delete ix ~key:"a" ~rid:1);
  Alcotest.(check (list int)) "remaining" [ 2 ] (Index_tree.lookup ix ~key:"a");
  check_int "count" 1 (Index_tree.count ix)

let test_ix_range () =
  let ix = Index_tree.create ~name:"ix" ~unique:true () in
  for i = 1 to 100 do
    Index_tree.insert ix ~key:(key_of_int i) ~rid:i
  done;
  let seen = ref [] in
  Index_tree.range ix ~lo:(key_of_int 10) ~hi:(key_of_int 20) (fun _ rid ->
      seen := rid :: !seen;
      true);
  Alcotest.(check (list int)) "range inclusive" (List.init 11 (fun i -> i + 10)) (List.rev !seen);
  (* early stop *)
  let seen = ref 0 in
  Index_tree.range ix ~lo:(key_of_int 1) ~hi:(key_of_int 100) (fun _ _ ->
      incr seen;
      !seen < 5);
  check_int "early stop" 5 !seen

let test_ix_prefix () =
  let ix = Index_tree.create ~name:"ix" ~unique:false () in
  List.iteri
    (fun i k -> Index_tree.insert ix ~key:k ~rid:i)
    [ "apple"; "applesauce"; "banana"; "app"; "application" ];
  let seen = ref [] in
  Index_tree.prefix ix ~prefix:"apple" (fun k _ ->
      seen := k :: !seen;
      true);
  Alcotest.(check (list string)) "prefix matches" [ "apple"; "applesauce" ] (List.rev !seen)

let test_ix_duplicate_keys_across_splits () =
  (* Many entries under one key must survive node splits. *)
  let ix = Index_tree.create ~name:"ix" ~fanout:8 ~unique:false () in
  for rid = 1 to 300 do
    Index_tree.insert ix ~key:"same" ~rid
  done;
  for rid = 1 to 50 do
    Index_tree.insert ix ~key:"other" ~rid
  done;
  check_int "all same-key entries found" 300 (List.length (Index_tree.lookup ix ~key:"same"));
  check_int "other key intact" 50 (List.length (Index_tree.lookup ix ~key:"other"))

let test_ix_composite_keys () =
  let ix = Index_tree.create ~name:"ix" ~unique:true () in
  (* (w_id, d_id, c_id) composite — typical TPC-C customer key. *)
  for w = 1 to 3 do
    for d = 1 to 4 do
      for c = 1 to 5 do
        Index_tree.insert ix
          ~key:(Index_tree.encode_key [ Value.Int w; Value.Int d; Value.Int c ])
          ~rid:((w * 100) + (d * 10) + c)
      done
    done
  done;
  check_bool "point lookup" true
    (Index_tree.lookup_first ix ~key:(Index_tree.encode_key [ Value.Int 2; Value.Int 3; Value.Int 4 ])
    = Some 234);
  (* prefix over (w_id=2, d_id=3) returns its 5 customers in order *)
  let seen = ref [] in
  Index_tree.prefix ix ~prefix:(Index_tree.encode_key [ Value.Int 2; Value.Int 3 ]) (fun _ rid ->
      seen := rid :: !seen;
      true);
  Alcotest.(check (list int)) "prefix scan" [ 231; 232; 233; 234; 235 ] (List.rev !seen)

let prop_ix_model =
  (* Random (insert|delete|lookup) sequences against a reference model. *)
  let op_gen =
    QCheck.Gen.(
      map2
        (fun k r -> (k mod 20, r mod 8))
        small_nat small_nat)
  in
  QCheck.Test.make ~name:"index tree vs model" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 200) (pair (int_range 0 2) op_gen)))
    (fun ops ->
      let ix = Index_tree.create ~name:"m" ~fanout:4 ~unique:false () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (op, (k, r)) ->
          let key = Printf.sprintf "k%02d" k in
          match op with
          | 0 ->
            if not (List.mem r (Hashtbl.find_opt model key |> Option.value ~default:[])) then begin
              Index_tree.insert ix ~key ~rid:r;
              Hashtbl.replace model key
                (List.sort compare (r :: (Hashtbl.find_opt model key |> Option.value ~default:[])))
            end
          | 1 ->
            let present = List.mem r (Hashtbl.find_opt model key |> Option.value ~default:[]) in
            let deleted = Index_tree.delete ix ~key ~rid:r in
            if deleted <> present then failwith "delete disagrees";
            if present then
              Hashtbl.replace model key
                (List.filter (( <> ) r) (Hashtbl.find_opt model key |> Option.value ~default:[]))
          | _ ->
            let got = Index_tree.lookup ix ~key in
            let want = Hashtbl.find_opt model key |> Option.value ~default:[] in
            if got <> want then failwith "lookup disagrees")
        ops;
      true)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "phoebe_btree"
    [
      ( "table_tree",
        [
          Alcotest.test_case "append/read" `Quick test_tt_append_read;
          Alcotest.test_case "many leaves" `Quick test_tt_many_leaves;
          Alcotest.test_case "absent rids" `Quick test_tt_absent_rids;
          Alcotest.test_case "delete" `Quick test_tt_delete;
          Alcotest.test_case "scan order" `Quick test_tt_scan_order;
          Alcotest.test_case "freeze prefix" `Quick test_tt_freeze_prefix;
          Alcotest.test_case "delete frozen" `Quick test_tt_freeze_then_delete_frozen;
          Alcotest.test_case "warm row" `Quick test_tt_warm_row;
          Alcotest.test_case "freeze respects access counts" `Quick
            test_tt_freeze_cold_prefix_respects_access;
          Alcotest.test_case "cold reads under tiny buffer" `Quick test_tt_eviction_cold_reads;
          Alcotest.test_case "scan with rid gaps" `Quick test_tt_scan_with_rid_gaps;
          Alcotest.test_case "model random ops" `Quick test_tt_model_random_ops;
        ] );
      ( "index_tree",
        Alcotest.test_case "insert/lookup" `Quick test_ix_insert_lookup
        :: Alcotest.test_case "unique violation" `Quick test_ix_unique_violation
        :: Alcotest.test_case "non-unique" `Quick test_ix_non_unique
        :: Alcotest.test_case "delete" `Quick test_ix_delete
        :: Alcotest.test_case "range" `Quick test_ix_range
        :: Alcotest.test_case "prefix" `Quick test_ix_prefix
        :: Alcotest.test_case "duplicates across splits" `Quick test_ix_duplicate_keys_across_splits
        :: Alcotest.test_case "composite keys" `Quick test_ix_composite_keys
        :: qsuite [ prop_ix_model ] );
    ]
