(* TPC-C correctness tests: loader cardinalities, each transaction's
   effects, mix runs with consistency checks, recovery mid-benchmark,
   plus the generic workload driver and the baseline configurations. *)
open Phoebe_core
module T = Phoebe_tpcc.Tpcc
module W = Phoebe_workload.Workload
module B = Phoebe_baseline.Baseline
module Value = Phoebe_storage.Value
module Prng = Phoebe_util.Prng
module Wal = Phoebe_wal.Wal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_cfg = { Config.default with Config.n_workers = 2; slots_per_worker = 4 }

let tiny_scale =
  {
    T.districts_per_warehouse = 3;
    customers_per_district = 20;
    items = 100;
    initial_orders_per_district = 10;
  }

let make ?(warehouses = 2) ?(cfg = small_cfg) () =
  let db = Db.create cfg in
  (db, T.load db ~warehouses ~scale:tiny_scale ~seed:7 ())

let count_rows db name =
  let t = Db.table db name in
  Db.with_txn db (fun txn ->
      let n = ref 0 in
      Table.scan t txn (fun _ _ -> incr n);
      !n)

(* ------------------------------------------------------------------ *)
(* Loader *)

let test_load_cardinalities () =
  let db, _ = make () in
  check_int "warehouses" 2 (count_rows db "warehouse");
  check_int "districts" 6 (count_rows db "district");
  check_int "customers" 120 (count_rows db "customer");
  check_int "items" 100 (count_rows db "item");
  check_int "stock" 200 (count_rows db "stock");
  check_int "orders" 60 (count_rows db "orders");
  (* 30% of preloaded orders are undelivered *)
  check_int "neworders" 18 (count_rows db "neworder")

let test_load_consistency () =
  let _, t = make () in
  List.iter
    (fun (name, ok) -> check_bool ("initial " ^ name) true ok)
    (T.consistency_checks t)

(* ------------------------------------------------------------------ *)
(* Individual transactions *)

let district_next_o_id db ~w ~d =
  let district = Db.table db "district" in
  Db.with_txn db (fun txn ->
      match
        Table.index_lookup_first district txn ~index:"district_pk"
          ~key:[ Value.Int w; Value.Int d ]
      with
      | Some (_, row) -> ( match row.(5) with Value.Int v -> v | _ -> -1)
      | None -> -1)

let test_new_order_effects () =
  let db, t = make () in
  let before_no = district_next_o_id db ~w:1 ~d:1 in
  let before_orders = count_rows db "orders" in
  let rng = Prng.create ~seed:11 in
  (* several NewOrders; ~1% roll back by design, so tolerate Rollback *)
  let committed = ref 0 in
  for _ = 1 to 20 do
    try
      Db.with_txn db (fun txn -> T.new_order t txn rng ~w_id:1);
      incr committed
    with T.Rollback -> () | Phoebe_txn.Txnmgr.Abort _ -> ()
  done;
  check_bool "orders inserted" true (count_rows db "orders" >= before_orders + !committed);
  check_bool "next_o_id advanced" true (district_next_o_id db ~w:1 ~d:1 >= before_no);
  List.iter (fun (n, ok) -> check_bool n true ok) (T.consistency_checks t)

let test_payment_effects () =
  let db, t = make () in
  let before_hist = count_rows db "history" in
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 20 do
    Db.with_txn db (fun txn -> T.payment t txn rng ~w_id:1)
  done;
  check_bool "history rows appended" true (count_rows db "history" > before_hist);
  List.iter (fun (n, ok) -> check_bool n true ok) (T.consistency_checks t)

let test_delivery_consumes_neworders () =
  let db, t = make () in
  let before = count_rows db "neworder" in
  let rng = Prng.create ~seed:17 in
  Db.with_txn db (fun txn -> T.delivery t txn rng ~w_id:1);
  check_bool "neworder rows consumed" true (count_rows db "neworder" < before);
  List.iter (fun (n, ok) -> check_bool n true ok) (T.consistency_checks t)

let test_order_status_and_stock_level_read_only () =
  let db, t = make () in
  let rng = Prng.create ~seed:19 in
  let before = count_rows db "orders" in
  for _ = 1 to 10 do
    Db.with_txn db (fun txn -> T.order_status t txn rng ~w_id:1);
    Db.with_txn db (fun txn -> T.stock_level t txn rng ~w_id:1)
  done;
  check_int "read-only: no new orders" before (count_rows db "orders")

let test_payment_by_name_is_deterministic_midpoint () =
  (* spec 2.5.2.2: customer selected by last name takes the midpoint of
     the first-name-ordered matches; repeated payments must hit real
     customers and append history rows every time *)
  let db, t = make () in
  let rng = Prng.create ~seed:23 in
  let before = count_rows db "history" in
  for _ = 1 to 30 do
    Db.with_txn db (fun txn -> T.payment t txn rng ~w_id:2)
  done;
  check_bool "payments landed" true (count_rows db "history" >= before + 25)

let test_new_order_rollback_rate () =
  (* spec 2.4.1.4: ~1% of NewOrders roll back on an unused item id; the
     rollback undoes the order/orderline/neworder inserts *)
  let db, t = make () in
  let rng = Prng.create ~seed:29 in
  let rollbacks = ref 0 and committed = ref 0 in
  for _ = 1 to 300 do
    try
      Db.with_txn db (fun txn -> T.new_order t txn rng ~w_id:1);
      incr committed
    with
    | T.Rollback -> incr rollbacks
    | Phoebe_txn.Txnmgr.Abort _ -> ()
  done;
  check_bool "some rollbacks occurred" true (!rollbacks >= 1);
  check_bool "rollback rate ~1%" true (!rollbacks < 15);
  (* every committed NewOrder left exactly one order: next_o_id - 31 =
     committed per district summed *)
  let orders = count_rows db "orders" in
  check_int "orders = preload + committed" (60 + !committed) orders;
  List.iter (fun (n, ok) -> check_bool n true ok) (T.consistency_checks t)

(* ------------------------------------------------------------------ *)
(* Mix runs *)

let test_mix_run_and_consistency () =
  let db, t = make () in
  let r = T.run_mix t ~concurrency:8 ~duration_ns:300_000_000 ~seed:3 () in
  check_bool "committed transactions" true (r.T.total_committed > 100);
  check_bool "tpmC positive" true (r.T.tpmc > 0.0);
  check_bool "NewOrder share roughly 45%" true
    (let share = float_of_int r.T.new_orders /. float_of_int r.T.total_committed in
     share > 0.30 && share < 0.60);
  ignore (Db.gc db);
  List.iter (fun (n, ok) -> check_bool ("post-run " ^ n) true ok) (T.consistency_checks t)

let test_mix_run_without_affinity () =
  let _, t = make () in
  let r = T.run_mix t ~affinity:false ~concurrency:8 ~duration_ns:200_000_000 ~seed:4 () in
  check_bool "committed" true (r.T.total_committed > 50);
  List.iter (fun (n, ok) -> check_bool n true ok) (T.consistency_checks t)

let test_throughput_series_nonempty () =
  let _, t = make () in
  ignore (T.run_mix t ~concurrency:4 ~duration_ns:2_000_000_000 ~seed:5 ());
  check_bool "series has samples" true (List.length (T.throughput_series t) >= 2)

let test_rfa_mostly_local_commits () =
  (* tuple-level RFA (paper 8): under the standard affine mix at
     realistic cardinalities, the majority of commits must be satisfied
     by the local WAL writer alone (hot-row rewrites across a worker's
     slots are the remaining remote dependencies) *)
  let cfg = { small_cfg with Config.n_workers = 4; slots_per_worker = 8 } in
  let db = Db.create cfg in
  let t = T.load db ~warehouses:4 ~scale:T.default_scale ~seed:7 () in
  ignore (T.run_mix t ~concurrency:32 ~duration_ns:200_000_000 ~seed:9 ());
  let s = Db.stats db in
  check_bool "RFA keeps most commits local" true
    (s.Db.rfa_local_commits > s.Db.rfa_remote_waits)

(* ------------------------------------------------------------------ *)
(* Recovery mid-benchmark *)

let test_recovery_after_mix () =
  let db1, t1 = make () in
  ignore (T.run_mix t1 ~concurrency:8 ~duration_ns:200_000_000 ~seed:6 ());
  Db.checkpoint db1;
  let db2 = Db.create small_cfg in
  (* identical DDL, no data: replay fills the tables *)
  ignore (T.load db2 ~load_data:false ~warehouses:2 ~scale:tiny_scale ~seed:7 ());
  let report = Db.replay_wal db2 ~from:(Wal.store (Db.wal db1)) in
  check_bool "replayed ops" true (report.Phoebe_wal.Recovery.ops_replayed > 100);
  List.iter
    (fun name -> check_int ("recovered rows: " ^ name) (count_rows db1 name) (count_rows db2 name))
    [ "warehouse"; "district"; "customer"; "orders"; "orderline"; "neworder"; "history" ]

(* ------------------------------------------------------------------ *)
(* Workload driver *)

let test_workload_runs () =
  let db = Db.create small_cfg in
  let w = W.setup db ~rows:500 ~value_bytes:32 ~seed:1 () in
  let r = W.run w ~mix:W.mixed ~concurrency:8 ~duration_ns:100_000_000 ~seed:2 () in
  check_bool "committed" true (r.W.committed > 20);
  check_bool "throughput positive" true (r.W.txn_per_s > 0.0)

let test_workload_zipf_vs_uniform_contention () =
  (* Skew on an update-heavy mix must produce at least as many aborts /
     no more throughput than uniform access. *)
  let run dist =
    let db = Db.create small_cfg in
    let w = W.setup db ~rows:200 ~value_bytes:16 ~seed:1 () in
    W.run w ~dist ~mix:W.update_heavy ~ops_per_txn:8 ~concurrency:8 ~duration_ns:100_000_000
      ~seed:2 ()
  in
  let z = run (W.Zipfian 0.99) and u = run W.Uniform in
  check_bool "both committed" true (z.W.committed > 0 && u.W.committed > 0)

(* ------------------------------------------------------------------ *)
(* Baselines *)

let test_pg_like_slower_than_phoebe () =
  let run cfg =
    let db = Db.create cfg in
    let t = T.load db ~warehouses:2 ~scale:tiny_scale ~seed:7 () in
    let r = T.run_mix t ~concurrency:8 ~duration_ns:200_000_000 ~seed:3 () in
    r.T.tpm_total
  in
  let phoebe = run { Config.default with Config.n_workers = 4; slots_per_worker = 2 } in
  let pg = run (B.pg_like ~workers:8 ()) in
  check_bool "phoebe faster than pg-like" true (phoebe > pg *. 1.5);
  check_bool "pg-like still works" true (pg > 0.0)

let test_baseline_configs_wellformed () =
  let pg = B.pg_like () in
  check_bool "pg thread model" true (pg.Config.model = Phoebe_runtime.Scheduler.Thread);
  check_bool "pg scans snapshots" true (pg.Config.snapshot_mode = Phoebe_txn.Txnmgr.Scan_active);
  check_bool "pg single wal writer" true pg.Config.wal.Wal.single_writer;
  check_bool "pg no rfa" true (not pg.Config.wal.Wal.rfa);
  let odb = B.odb_like () in
  check_bool "odb device is slower than pm9a3" true
    (odb.Config.data_device.Phoebe_io.Device.read_mb_s
    < Phoebe_io.Device.pm9a3.Phoebe_io.Device.read_mb_s)

let () =
  Alcotest.run "phoebe_tpcc"
    [
      ( "load",
        [
          Alcotest.test_case "cardinalities" `Quick test_load_cardinalities;
          Alcotest.test_case "initial consistency" `Quick test_load_consistency;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "new order" `Quick test_new_order_effects;
          Alcotest.test_case "payment" `Quick test_payment_effects;
          Alcotest.test_case "delivery" `Quick test_delivery_consumes_neworders;
          Alcotest.test_case "read-only txns" `Quick test_order_status_and_stock_level_read_only;
          Alcotest.test_case "payment by name" `Quick test_payment_by_name_is_deterministic_midpoint;
          Alcotest.test_case "rollback rate" `Quick test_new_order_rollback_rate;
        ] );
      ( "mix",
        [
          Alcotest.test_case "run + consistency" `Quick test_mix_run_and_consistency;
          Alcotest.test_case "no affinity" `Quick test_mix_run_without_affinity;
          Alcotest.test_case "throughput series" `Quick test_throughput_series_nonempty;
        ] );
      ("recovery", [ Alcotest.test_case "after mix" `Quick test_recovery_after_mix ]);
      ("rfa", [ Alcotest.test_case "mostly local commits" `Quick test_rfa_mostly_local_commits ]);
      ( "workload",
        [
          Alcotest.test_case "runs" `Quick test_workload_runs;
          Alcotest.test_case "zipf vs uniform" `Quick test_workload_zipf_vs_uniform_contention;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "pg-like slower" `Quick test_pg_like_slower_than_phoebe;
          Alcotest.test_case "configs well-formed" `Quick test_baseline_configs_wellformed;
        ] );
    ]
