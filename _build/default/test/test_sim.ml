(* Tests for the discrete-event engine, counters and resources. *)
open Phoebe_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:30 (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:10 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:20 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_int "clock at last event" 30 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:100 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo within same timestamp" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5 (fun () ->
      log := `A :: !log;
      Engine.schedule e ~delay:5 (fun () -> log := `B :: !log));
  Engine.run e;
  check_int "final time" 10 (Engine.now e);
  check_int "both ran" 2 (List.length !log)

let test_engine_run_until () =
  let e = Engine.create () in
  let ran = ref 0 in
  Engine.schedule e ~delay:10 (fun () -> incr ran);
  Engine.schedule e ~delay:1000 (fun () -> incr ran);
  Engine.run_until e ~time:500;
  check_int "only first ran" 1 !ran;
  check_int "clock moved to horizon" 500 (Engine.now e);
  check_int "one pending" 1 (Engine.pending e)

let test_engine_past_schedule_clamped () =
  let e = Engine.create () in
  let at = ref (-1) in
  Engine.schedule e ~delay:100 (fun () ->
      Engine.schedule_at e ~time:5 (fun () -> at := Engine.now e));
  Engine.run e;
  check_int "clamped to now" 100 !at

let test_counters () =
  let c = Counters.create () in
  Counters.add c Component.Wal 100;
  Counters.add c Component.Wal 50;
  Counters.add c Component.Effective 850;
  check_int "wal" 150 (Counters.get c Component.Wal);
  check_int "total" 1000 (Counters.total c);
  let snap0 = Counters.snapshot c in
  Counters.add c Component.Mvcc 500;
  let d = Counters.diff snap0 (Counters.snapshot c) in
  let breakdown = Counters.breakdown d in
  let mvcc_share =
    List.assoc Component.Mvcc (List.map (fun (comp, _, share) -> (comp, share)) breakdown)
  in
  Alcotest.(check (float 1e-9)) "diff isolates new work" 1.0 mvcc_share;
  Counters.reset c;
  check_int "reset" 0 (Counters.total c)

let test_resource_fifo () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"wal" in
  let t1 = Resource.acquire_for r ~hold_ns:100 in
  let t2 = Resource.acquire_for r ~hold_ns:100 in
  check_int "first completes at 100" 100 t1;
  check_int "second queues behind" 200 t2;
  check_int "busy until" 200 (Resource.busy_until r)

let test_resource_idle_gap () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"disk" in
  let t1 = Resource.acquire_for r ~hold_ns:10 in
  check_int "t1" 10 t1;
  Engine.schedule e ~delay:1000 (fun () ->
      let t2 = Resource.acquire_for r ~hold_ns:10 in
      check_int "starts at now when idle" 1010 t2);
  Engine.run e;
  Alcotest.(check bool) "utilisation < 100%" true (Resource.utilisation r ~since:0 < 0.5)

let test_cost_defaults_positive () =
  let c = Cost.default in
  List.iter
    (fun (name, v) -> check_bool name true (v > 0))
    [
      ("btree_search", c.Cost.btree_search_per_level);
      ("latch", c.Cost.latch_acquire);
      ("undo", c.Cost.undo_create);
      ("wal", c.Cost.wal_record_base);
      ("switch", c.Cost.coroutine_switch);
      ("thread switch", c.Cost.thread_switch);
    ];
  check_bool "thread switch dearer than coroutine" true
    (c.Cost.thread_switch > 10 * c.Cost.coroutine_switch)

let () =
  Alcotest.run "phoebe_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_engine_order;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "past schedule clamped" `Quick test_engine_past_schedule_clamped;
        ] );
      ("counters", [ Alcotest.test_case "accounting" `Quick test_counters ]);
      ( "resource",
        [
          Alcotest.test_case "fifo queueing" `Quick test_resource_fifo;
          Alcotest.test_case "idle gap" `Quick test_resource_idle_gap;
        ] );
      ("cost", [ Alcotest.test_case "defaults sane" `Quick test_cost_defaults_positive ]);
    ]
