(* Tests for the columnar analytics operators: agreement with row-wise
   scans across tier mixes, MVCC correctness against uncommitted and
   post-snapshot writers, and null/delete handling. *)
open Phoebe_core
module A = Phoebe_analytics.Analytics
module Value = Phoebe_storage.Value
module Txnmgr = Phoebe_txn.Txnmgr
module Scheduler = Phoebe_runtime.Scheduler
module Prng = Phoebe_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let cfg = { Config.default with Config.n_workers = 2; slots_per_worker = 4 }

let make_events ?(rows = 2000) ?(freeze = true) () =
  let db = Db.create cfg in
  let t =
    Db.create_table db ~name:"events"
      ~schema:[ ("k", Value.T_int); ("amount", Value.T_float); ("kind", Value.T_str) ]
  in
  let rng = Prng.create ~seed:8 in
  Db.with_txn db (fun txn ->
      for k = 1 to rows do
        ignore
          (Table.insert t txn
             [|
               Value.Int k;
               (if k mod 37 = 0 then Value.Null
                else Value.Float (float_of_int (Prng.int rng 1000) /. 10.0));
               Value.Str (Printf.sprintf "kind-%d" (k mod 4));
             |])
      done);
  if freeze then begin
    for _ = 1 to 8 do
      Phoebe_btree.Table_tree.decay_access_counts (Table.tree t)
    done;
    ignore (Db.freeze_tables db)
  end;
  (db, t)

(* row-wise oracle through the ordinary MVCC scan *)
let oracle db t txn col =
  let schema = Table.schema t in
  let c = Value.Schema.column_index schema col in
  ignore db;
  let count = ref 0 and sum = ref 0.0 and mn = ref Float.nan and mx = ref Float.nan in
  Table.scan t txn (fun _ row ->
      match row.(c) with
      | Value.Int i -> failwith (string_of_int i)
      | Value.Float x ->
        incr count;
        sum := !sum +. x;
        if !count = 1 then begin
          mn := x;
          mx := x
        end
        else begin
          mn := Float.min !mn x;
          mx := Float.max !mx x
        end
      | _ -> ());
  (!count, !sum, !mn, !mx)

let agree db t =
  Db.with_txn db (fun txn ->
      let a = A.aggregate_column db t txn ~col:"amount" in
      let count, sum, mn, mx = oracle db t txn "amount" in
      check_int "count" count a.A.count;
      check_float "sum" sum a.A.sum;
      check_float "min" mn a.A.min;
      check_float "max" mx a.A.max)

let test_agreement_frozen () =
  let db, t = make_events () in
  check_bool "data frozen" true (A.tier_rows db t ~frozen:true > 1000);
  agree db t

let test_agreement_hot_only () =
  let db, t = make_events ~freeze:false () in
  check_int "nothing frozen" 0 (A.tier_rows db t ~frozen:true);
  agree db t

let test_agreement_after_mutations () =
  let db, t = make_events () in
  let rng = Prng.create ~seed:9 in
  (* update and delete across both tiers, then re-check *)
  for _ = 1 to 150 do
    let rid = 1 + Prng.int rng 2000 in
    if Prng.int rng 5 = 0 then ignore (Db.with_txn db (fun txn -> Table.delete t txn ~rid))
    else
      ignore
        (Db.with_txn db (fun txn ->
             Table.update t txn ~rid [ ("amount", Value.Float (float_of_int (Prng.int rng 100))) ]))
  done;
  agree db t;
  ignore (Db.gc db);
  agree db t

let test_uncommitted_writer_invisible () =
  let db, t = make_events ~rows:400 () in
  let q = Scheduler.Waitq.create () in
  let observed = ref (-1.0) in
  let baseline = Db.with_txn db (fun txn -> (A.aggregate_column db t txn ~col:"amount").A.sum) in
  (* writer holds an enormous uncommitted update *)
  Db.submit db (fun txn ->
      ignore (Table.update t txn ~rid:5 [ ("amount", Value.Float 1_000_000.0) ]);
      Scheduler.Waitq.wait q);
  Scheduler.submit (Db.scheduler db) (fun () ->
      Scheduler.charge Phoebe_sim.Component.Effective 100_000;
      Db.with_txn db (fun txn ->
          observed := (A.aggregate_column db t txn ~col:"amount").A.sum);
      Scheduler.Waitq.signal_all q);
  Db.run db;
  check_float "uncommitted update not aggregated" baseline !observed

let test_group_count () =
  let db, t = make_events ~rows:400 () in
  Db.with_txn db (fun txn ->
      let groups = A.group_count db t txn ~col:"kind" in
      check_int "four kinds" 4 (List.length groups);
      check_int "total rows" 400 (List.fold_left (fun acc (_, n) -> acc + n) 0 groups);
      List.iter (fun (_, n) -> check_int "even split" 100 n) groups)

let test_group_count_respects_deletes () =
  let db, t = make_events ~rows:400 () in
  (* delete every kind-0 row (k mod 4 = 0 => kind-0) *)
  Db.with_txn db (fun txn ->
      let victims = ref [] in
      Table.scan t txn (fun rid row -> if row.(2) = Value.Str "kind-0" then victims := rid :: !victims);
      List.iter (fun rid -> ignore (Table.delete t txn ~rid)) !victims);
  Db.with_txn db (fun txn ->
      let groups = A.group_count db t txn ~col:"kind" in
      check_bool "kind-0 gone" true (not (List.mem_assoc (Value.Str "kind-0") groups));
      check_int "three kinds left" 3 (List.length groups))

let () =
  Alcotest.run "phoebe_analytics"
    [
      ( "aggregate",
        [
          Alcotest.test_case "frozen + hot agreement" `Quick test_agreement_frozen;
          Alcotest.test_case "hot only" `Quick test_agreement_hot_only;
          Alcotest.test_case "after mutations + gc" `Quick test_agreement_after_mutations;
          Alcotest.test_case "uncommitted invisible" `Quick test_uncommitted_writer_invisible;
        ] );
      ( "group",
        [
          Alcotest.test_case "group count" `Quick test_group_count;
          Alcotest.test_case "respects deletes" `Quick test_group_count_respects_deletes;
        ] );
    ]
