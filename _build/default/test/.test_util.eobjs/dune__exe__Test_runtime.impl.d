test/test_runtime.ml: Alcotest Array Cpu List Phoebe_runtime Phoebe_sim Scheduler
