test/test_txn.ml: Alcotest Array Buffer Bytes List Phoebe_io Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn Phoebe_wal Printf QCheck QCheck_alcotest String
