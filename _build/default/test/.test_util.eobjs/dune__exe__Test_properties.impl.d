test/test_properties.ml: Alcotest Array Config Db Hashtbl List Phoebe_btree Phoebe_core Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn Phoebe_util Phoebe_wal Table
