test/test_analytics.ml: Alcotest Array Config Db Float List Phoebe_analytics Phoebe_btree Phoebe_core Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn Phoebe_util Printf Table
