test/test_sql.ml: Alcotest Array Config Db List Phoebe_core Phoebe_sql Phoebe_storage Printf String
