test/test_replication.ml: Alcotest Array Config Db List Phoebe_core Phoebe_replication Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_util Phoebe_wal Table
