test/test_storage.ml: Alcotest Buffer Bufmgr Bytes Char Frozen Fun Latch List Pax Phoebe_io Phoebe_sim Phoebe_storage Printf QCheck QCheck_alcotest String Value
