test/test_core.ml: Alcotest Array Config Db List Phoebe_btree Phoebe_core Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn Phoebe_util Phoebe_wal Printf Table
