test/test_io.ml: Alcotest Bytes List Phoebe_io Phoebe_sim
