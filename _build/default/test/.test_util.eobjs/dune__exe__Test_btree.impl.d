test/test_btree.ml: Alcotest Array Hashtbl Index_tree List Option Phoebe_btree Phoebe_io Phoebe_sim Phoebe_storage Phoebe_util Printf QCheck QCheck_alcotest Table_tree
