test/test_checkpoint.ml: Alcotest Array Checkpoint Config Db List Phoebe_btree Phoebe_core Phoebe_storage Phoebe_txn Phoebe_util Phoebe_wal Table
