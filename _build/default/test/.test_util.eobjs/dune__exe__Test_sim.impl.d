test/test_sim.ml: Alcotest Component Cost Counters Engine List Phoebe_sim Resource
