test/test_tpcc.ml: Alcotest Array Config Db List Phoebe_baseline Phoebe_core Phoebe_io Phoebe_runtime Phoebe_storage Phoebe_tpcc Phoebe_txn Phoebe_util Phoebe_wal Phoebe_workload Table
