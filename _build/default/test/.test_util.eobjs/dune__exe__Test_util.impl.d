test/test_util.ml: Alcotest Array Binheap Buffer Bytes Crc32 Float Fun List Phoebe_util Prng QCheck QCheck_alcotest Stats String Varint Zipf
