(* Tests for the SQL layer: lexing, parsing, planning (index selection),
   execution semantics, aggregates, transactions, and error paths. *)
open Phoebe_core
module Sql = Phoebe_sql.Sql
module Ast = Phoebe_sql.Ast
module Lexer = Phoebe_sql.Lexer
module Parser = Phoebe_sql.Parser
module Value = Phoebe_storage.Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let fresh () =
  let db = Db.create { Config.default with Config.n_workers = 2; slots_per_worker = 4 } in
  (db, Sql.session db)

let setup_employees s =
  ignore (Sql.exec s "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary FLOAT)");
  ignore (Sql.exec s "CREATE UNIQUE INDEX emp_pk ON emp (id)");
  ignore (Sql.exec s "CREATE INDEX emp_by_dept ON emp (dept)");
  ignore
    (Sql.exec s
       "INSERT INTO emp VALUES (1, 'ada', 'eng', 100.0), (2, 'grace', 'eng', 200.0), (3, \
        'alan', 'research', 150.0)")

let rows_of = function
  | Sql.Rows (_, rows) -> rows
  | _ -> Alcotest.fail "expected rows"

let affected = function
  | Sql.Affected n -> n
  | _ -> Alcotest.fail "expected an affected-rows result"

let int_at row i = match row.(i) with Value.Int v -> v | v -> Alcotest.failf "expected int, got %s" (Value.to_string v)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a, 'it''s', 4.5, -3 FROM t WHERE x <= 2 -- comment\n;" in
  check_int "token count" 17 (List.length toks);
  check_bool "keyword select" true (List.mem (Lexer.Keyword "SELECT") toks);
  check_bool "ident lowercased" true (List.mem (Lexer.Ident "a") toks);
  check_bool "string escape" true (List.mem (Lexer.String_lit "it's") toks);
  check_bool "float" true (List.mem (Lexer.Float_lit 4.5) toks);
  check_bool "le symbol" true (List.mem (Lexer.Symbol "<=") toks)

let test_lexer_errors () =
  Alcotest.check_raises "unterminated string" (Lexer.Lex_error "unterminated string literal")
    (fun () -> ignore (Lexer.tokenize "SELECT 'oops"));
  check_bool "bad char" true
    (try
       ignore (Lexer.tokenize "SELECT @");
       false
     with Lexer.Lex_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_select_full () =
  match
    Parser.parse_one
      "SELECT name, count(*) FROM emp WHERE dept = 'eng' AND salary >= 10 GROUP BY dept ORDER \
       BY name DESC LIMIT 5"
  with
  | Ast.Select q ->
    check_int "items" 2 (List.length q.Ast.items);
    check_str "table" "emp" q.Ast.from_table;
    check_int "predicates" 2 (List.length q.Ast.where);
    check_bool "group" true (q.Ast.group_by = Some "dept");
    (match q.Ast.order with
    | Some { Ast.ocol = "name"; descending = true } -> ()
    | _ -> Alcotest.fail "order by");
    check_bool "limit" true (q.Ast.limit = Some 5)
  | _ -> Alcotest.fail "expected SELECT"

let test_parse_update_expr () =
  match Parser.parse_one "UPDATE t SET a = a + 2 * b, c = 'x' WHERE id = 1" with
  | Ast.Update { assignments; where; _ } ->
    check_int "assignments" 2 (List.length assignments);
    check_int "where" 1 (List.length where);
    (match List.assoc "a" assignments with
    | Ast.E_add (Ast.E_col "a", Ast.E_mul (Ast.E_lit (Ast.L_int 2), Ast.E_col "b")) -> ()
    | _ -> Alcotest.fail "precedence: * binds tighter than +")
  | _ -> Alcotest.fail "expected UPDATE"

let test_parse_multi_statement () =
  check_int "three statements" 3
    (List.length (Parser.parse "BEGIN; INSERT INTO t VALUES (1); COMMIT;"))

let test_parse_errors () =
  List.iter
    (fun sql ->
      check_bool sql true
        (try
           ignore (Parser.parse_one sql);
           false
         with Parser.Parse_error _ -> true))
    [
      "SELECT FROM t";
      "INSERT t VALUES (1)";
      "CREATE TABLE t (x BLOB)";
      "UPDATE t SET";
      "SELECT * FROM t WHERE a ="; "DELETE t";
    ]

(* ------------------------------------------------------------------ *)
(* Planning *)

let test_planner_prefers_unique_index () =
  let db, s = fresh () in
  setup_employees s;
  ignore db;
  check_str "point query uses pk" "Index probe on emp using emp_pk (prefix=1)"
    (Sql.explain s "SELECT * FROM emp WHERE id = 1");
  check_str "secondary index" "Index probe on emp using emp_by_dept (prefix=1)"
    (Sql.explain s "SELECT * FROM emp WHERE dept = 'eng'");
  check_str "no usable index" "Seq scan on emp"
    (Sql.explain s "SELECT * FROM emp WHERE salary > 50")

let test_planner_residual_filter () =
  let _, s = fresh () in
  setup_employees s;
  (* dept is indexed, salary is a residual filter on top of the probe *)
  let rows = rows_of (Sql.exec s "SELECT name FROM emp WHERE dept = 'eng' AND salary > 150") in
  check_int "one row" 1 (List.length rows);
  check_str "grace" "grace" (Value.to_string (List.hd rows).(0))

(* ------------------------------------------------------------------ *)
(* Execution *)

let test_select_order_limit () =
  let _, s = fresh () in
  setup_employees s;
  let rows = rows_of (Sql.exec s "SELECT name FROM emp ORDER BY salary DESC LIMIT 2") in
  Alcotest.(check (list string)) "top-2 by salary" [ "grace"; "alan" ]
    (List.map (fun r -> Value.to_string r.(0)) rows)

let test_aggregates () =
  let _, s = fresh () in
  setup_employees s;
  (match rows_of (Sql.exec s "SELECT count(*), sum(salary), min(salary), max(salary) FROM emp") with
  | [ row ] ->
    check_int "count" 3 (int_at row 0);
    check_bool "sum" true (row.(1) = Value.Float 450.0);
    check_bool "min" true (row.(2) = Value.Float 100.0);
    check_bool "max" true (row.(3) = Value.Float 200.0)
  | _ -> Alcotest.fail "one aggregate row");
  match rows_of (Sql.exec s "SELECT dept, count(*) FROM emp GROUP BY dept") with
  | [ eng; research ] ->
    check_str "eng first" "eng" (Value.to_string eng.(0));
    check_int "eng count" 2 (int_at eng 1);
    check_int "research count" 1 (int_at research 1)
  | _ -> Alcotest.fail "two groups"

let test_update_arithmetic_rmw () =
  let _, s = fresh () in
  setup_employees s;
  check_int "two updated" 2 (affected (Sql.exec s "UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'"));
  match rows_of (Sql.exec s "SELECT sum(salary) FROM emp") with
  | [ row ] -> check_bool "sum grew by 20" true (row.(0) = Value.Float 470.0)
  | _ -> Alcotest.fail "sum"

let test_delete () =
  let _, s = fresh () in
  setup_employees s;
  check_int "one deleted" 1 (affected (Sql.exec s "DELETE FROM emp WHERE id = 2"));
  check_int "two remain" 2 (List.length (rows_of (Sql.exec s "SELECT * FROM emp")));
  check_int "delete all" 2 (affected (Sql.exec s "DELETE FROM emp"));
  check_int "empty" 0 (List.length (rows_of (Sql.exec s "SELECT * FROM emp")))

let test_insert_named_columns_and_nulls () =
  let _, s = fresh () in
  ignore (Sql.exec s "CREATE TABLE t (a INT, b TEXT, c FLOAT)");
  ignore (Sql.exec s "INSERT INTO t (c, a) VALUES (1.5, 7)");
  match rows_of (Sql.exec s "SELECT a, b, c FROM t") with
  | [ row ] ->
    check_int "a" 7 (int_at row 0);
    check_bool "b defaulted to NULL" true (row.(1) = Value.Null);
    check_bool "c" true (row.(2) = Value.Float 1.5)
  | _ -> Alcotest.fail "one row"

let test_int_literal_into_float_column () =
  let _, s = fresh () in
  ignore (Sql.exec s "CREATE TABLE t (x FLOAT)");
  ignore (Sql.exec s "INSERT INTO t VALUES (3)");
  match rows_of (Sql.exec s "SELECT x FROM t WHERE x = 3") with
  | [ row ] -> check_bool "coerced" true (row.(0) = Value.Float 3.0)
  | _ -> Alcotest.fail "coercion failed"

(* ------------------------------------------------------------------ *)
(* Transactions *)

let test_explicit_transaction_commit () =
  let _, s = fresh () in
  setup_employees s;
  ignore (Sql.exec s "BEGIN");
  check_bool "in txn" true (Sql.in_transaction s);
  ignore (Sql.exec s "INSERT INTO emp VALUES (4, 'tony', 'ops', 90.0)");
  ignore (Sql.exec s "COMMIT");
  check_bool "out of txn" false (Sql.in_transaction s);
  check_int "committed" 4 (List.length (rows_of (Sql.exec s "SELECT * FROM emp")))

let test_explicit_transaction_rollback () =
  let _, s = fresh () in
  setup_employees s;
  ignore (Sql.exec s "BEGIN");
  ignore (Sql.exec s "DELETE FROM emp");
  check_int "deleted inside txn" 0 (List.length (rows_of (Sql.exec s "SELECT * FROM emp")));
  ignore (Sql.exec s "ROLLBACK");
  check_int "restored" 3 (List.length (rows_of (Sql.exec s "SELECT * FROM emp")))

let test_unique_violation_is_error () =
  let _, s = fresh () in
  setup_employees s;
  check_bool "duplicate pk" true
    (try
       ignore (Sql.exec s "INSERT INTO emp VALUES (1, 'dup', 'x', 0.0)");
       false
     with Sql.Error _ -> true);
  check_int "table unchanged" 3 (List.length (rows_of (Sql.exec s "SELECT * FROM emp")))

let test_script () =
  let _, s = fresh () in
  let results =
    Sql.exec_script s
      "CREATE TABLE t (x INT); INSERT INTO t VALUES (1), (2), (3); SELECT count(*) FROM t;"
  in
  check_int "three results" 3 (List.length results);
  match List.nth results 2 with
  | Sql.Rows (_, [ row ]) -> check_int "count" 3 (int_at row 0)
  | _ -> Alcotest.fail "script select"

let test_errors () =
  let _, s = fresh () in
  List.iter
    (fun sql ->
      check_bool sql true
        (try
           ignore (Sql.exec s sql);
           false
         with Sql.Error _ -> true))
    [
      "SELECT * FROM missing";
      "CREATE TABLE t (x INT); CREATE TABLE t (x INT)";
      "INSERT INTO t VALUES (1, 2)";
      "SELECT nope FROM t";
      "COMMIT";
      "ROLLBACK";
      "UPDATE t SET x = 'str' + 1";
    ]

let test_limit_with_index_probe () =
  let _, s = fresh () in
  ignore (Sql.exec s "CREATE TABLE n (x INT)");
  ignore (Sql.exec s "CREATE UNIQUE INDEX n_pk ON n (x)");
  ignore
    (Sql.exec s
       ("INSERT INTO n VALUES " ^ String.concat "," (List.init 50 (fun i -> Printf.sprintf "(%d)" i))));
  check_int "limit honoured" 5 (List.length (rows_of (Sql.exec s "SELECT x FROM n LIMIT 5")));
  check_int "range + limit" 3
    (List.length (rows_of (Sql.exec s "SELECT x FROM n WHERE x >= 10 AND x <= 40 LIMIT 3")))

let test_group_by_with_where () =
  let _, s = fresh () in
  setup_employees s;
  match rows_of (Sql.exec s "SELECT dept, count(*) FROM emp WHERE salary < 180 GROUP BY dept") with
  | [ eng; research ] ->
    check_int "eng under 180" 1 (int_at eng 1);
    check_int "research under 180" 1 (int_at research 1)
  | g -> Alcotest.failf "expected 2 groups, got %d" (List.length g)

let test_delete_via_index () =
  let _, s = fresh () in
  setup_employees s;
  check_str "delete plans an index probe" "Index probe on emp using emp_pk (prefix=1)"
    (Sql.explain s "SELECT * FROM emp WHERE id = 3");
  check_int "deleted one" 1 (affected (Sql.exec s "DELETE FROM emp WHERE id = 3"));
  check_int "absent" 0 (List.length (rows_of (Sql.exec s "SELECT * FROM emp WHERE id = 3")))

let test_ne_predicate_is_residual () =
  let _, s = fresh () in
  setup_employees s;
  check_str "<> cannot bind an index" "Seq scan on emp"
    (Sql.explain s "SELECT * FROM emp WHERE dept <> 'eng'");
  check_int "one non-eng" 1 (List.length (rows_of (Sql.exec s "SELECT * FROM emp WHERE dept <> 'eng'")))

(* SQL runs on the same MVCC engine: concurrent sessions see snapshot
   isolation. *)
let test_sql_sees_snapshots () =
  let db, s1 = fresh () in
  let s2 = Sql.session db in
  ignore (Sql.exec s1 "CREATE TABLE t (x INT)");
  ignore (Sql.exec s1 "INSERT INTO t VALUES (1)");
  ignore (Sql.exec s2 "BEGIN");
  check_int "s2 sees 1 row" 1 (List.length (rows_of (Sql.exec s2 "SELECT * FROM t")));
  ignore (Sql.exec s1 "INSERT INTO t VALUES (2)");
  (* read committed: the next statement takes a fresh snapshot *)
  check_int "s2 sees the new commit" 2 (List.length (rows_of (Sql.exec s2 "SELECT * FROM t")));
  ignore (Sql.exec s2 "COMMIT")

let () =
  Alcotest.run "phoebe_sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "select" `Quick test_parse_select_full;
          Alcotest.test_case "update exprs" `Quick test_parse_update_expr;
          Alcotest.test_case "multi statement" `Quick test_parse_multi_statement;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "planner",
        [
          Alcotest.test_case "index selection" `Quick test_planner_prefers_unique_index;
          Alcotest.test_case "residual filters" `Quick test_planner_residual_filter;
        ] );
      ( "exec",
        [
          Alcotest.test_case "order/limit" `Quick test_select_order_limit;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "update arithmetic" `Quick test_update_arithmetic_rmw;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "named columns + nulls" `Quick test_insert_named_columns_and_nulls;
          Alcotest.test_case "int->float coercion" `Quick test_int_literal_into_float_column;
          Alcotest.test_case "limit with index" `Quick test_limit_with_index_probe;
          Alcotest.test_case "group by + where" `Quick test_group_by_with_where;
          Alcotest.test_case "delete via index" `Quick test_delete_via_index;
          Alcotest.test_case "<> residual" `Quick test_ne_predicate_is_residual;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit" `Quick test_explicit_transaction_commit;
          Alcotest.test_case "rollback" `Quick test_explicit_transaction_rollback;
          Alcotest.test_case "unique violation" `Quick test_unique_violation_is_error;
          Alcotest.test_case "script" `Quick test_script;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "snapshots" `Quick test_sql_sees_snapshots;
        ] );
    ]
