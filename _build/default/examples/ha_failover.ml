(* Primary-standby high availability (the paper's future-work item 2):
   a primary serving transactions ships its WAL continuously to a warm
   standby over a simulated 10GbE link; the primary then "fails" and the
   standby is promoted and keeps serving.

   Run with: dune exec examples/ha_failover.exe *)
open Phoebe_core
module Repl = Phoebe_replication.Replication
module Value = Phoebe_storage.Value

let () =
  print_endline "== primary-standby failover ==";
  let cfg = { Config.default with Config.n_workers = 4; slots_per_worker = 8 } in
  let primary = Db.create cfg in
  let standby = Db.create_on (Db.engine primary) cfg in
  let ddl db =
    let t =
      Db.create_table db ~name:"orders"
        ~schema:[ ("customer", Value.T_int); ("total", Value.T_float); ("status", Value.T_str) ]
    in
    Db.create_index db t ~name:"orders_by_customer" ~cols:[ "customer" ] ~unique:false;
    t
  in
  let pt = ddl primary and st = ddl standby in
  let repl = Repl.attach ~primary ~standby () in

  let rng = Phoebe_util.Prng.create ~seed:12 in
  for _ = 1 to 500 do
    Db.submit primary (fun txn ->
        ignore
          (Table.insert pt txn
             [|
               Value.Int (Phoebe_util.Prng.int rng 50);
               Value.Float (float_of_int (Phoebe_util.Prng.int rng 10_000) /. 100.0);
               Value.Str "placed";
             |]))
  done;
  Db.run_for primary ~ns:20_000_000;
  let count db t =
    Db.with_txn db (fun txn ->
        let n = ref 0 in
        Table.scan t txn (fun _ _ -> incr n);
        !n)
  in
  Printf.printf "primary served %d transactions; standby mirrors %d/%d rows (%.1f KB shipped)\n"
    (Db.committed primary) (count standby st) (count primary pt)
    (float_of_int (Repl.shipped_bytes repl) /. 1024.0);

  (* ---- primary fails ---- *)
  print_endline "\n-- primary failure: promoting the standby --";
  let promoted = Repl.promote repl in
  Db.run_for primary ~ns:1_000_000;
  Printf.printf "promoted standby has %d rows (acknowledged commits preserved)\n"
    (count promoted st);
  (* the promoted node serves reads and writes *)
  ignore
    (Db.with_txn promoted (fun txn ->
         Table.insert st txn [| Value.Int 7; Value.Float 42.0; Value.Str "post-failover" |]));
  Db.with_txn promoted (fun txn ->
      let placed = ref 0 and post = ref 0 in
      Table.scan st txn (fun _ row ->
          match row.(2) with
          | Value.Str "placed" -> incr placed
          | Value.Str "post-failover" -> incr post
          | _ -> ());
      Printf.printf "after failover: %d placed orders + %d new order accepted by the new primary\n"
        !placed !post)
