examples/quickstart.mli:
