examples/banking.mli:
