examples/analytics.ml: Array Config Db Float List Phoebe_analytics Phoebe_btree Phoebe_core Phoebe_storage Phoebe_util Printf Table Unix
