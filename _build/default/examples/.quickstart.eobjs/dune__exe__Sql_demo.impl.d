examples/sql_demo.ml: Array Config Db List Phoebe_core Phoebe_sql Phoebe_storage Printf String
