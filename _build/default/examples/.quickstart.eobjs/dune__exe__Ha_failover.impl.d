examples/ha_failover.ml: Array Config Db Phoebe_core Phoebe_replication Phoebe_storage Phoebe_util Printf Table
