examples/ha_failover.mli:
