examples/temperature_tiers.ml: Array Config Db Phoebe_btree Phoebe_core Phoebe_io Phoebe_storage Phoebe_util Printf Table
