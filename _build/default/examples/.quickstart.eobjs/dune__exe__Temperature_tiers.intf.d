examples/temperature_tiers.mli:
