examples/inventory.mli:
