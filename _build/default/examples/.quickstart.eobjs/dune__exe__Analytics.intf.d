examples/analytics.mli:
