examples/inventory.ml: Array Config Db Phoebe_core Phoebe_storage Phoebe_txn Phoebe_util Printf Table
