examples/banking.ml: Array Config Db Phoebe_core Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn Phoebe_util Printf Table
