(* Banking: concurrent transfers on the co-routine runtime, snapshot
   isolation semantics (read committed vs repeatable read), deadlock
   detection, and the money-conservation invariant.

   Run with: dune exec examples/banking.exe *)
open Phoebe_core
module Value = Phoebe_storage.Value
module Txnmgr = Phoebe_txn.Txnmgr
module Scheduler = Phoebe_runtime.Scheduler
module Prng = Phoebe_util.Prng

let n_accounts = 50
let initial_balance = 1_000
let n_transfers = 2_000

let balance db accounts rid =
  Db.with_txn db (fun txn ->
      match Table.get accounts txn ~rid with
      | Some row -> ( match row.(1) with Value.Int v -> v | _ -> 0)
      | None -> 0)

let () =
  print_endline "== banking: concurrent transfers under MVCC ==";
  let cfg = { Config.default with Config.n_workers = 8; slots_per_worker = 16 } in
  let db = Db.create cfg in
  let accounts =
    Db.create_table db ~name:"accounts" ~schema:[ ("owner", Value.T_str); ("balance", Value.T_int) ]
  in
  Db.create_index db accounts ~name:"accounts_by_owner" ~cols:[ "owner" ] ~unique:true;
  let rids =
    Array.init n_accounts (fun i ->
        Db.with_txn db (fun txn ->
            Table.insert accounts txn
              [| Value.Str (Printf.sprintf "acct-%03d" i); Value.Int initial_balance |]))
  in
  Printf.printf "loaded %d accounts with %d each (total %d)\n" n_accounts initial_balance
    (n_accounts * initial_balance);

  (* Fire transfers as concurrent transactions. Repeatable read +
     automatic retry makes each transfer atomic; transfers that touch
     the same accounts in opposite orders are resolved by deadlock
     detection and retried. *)
  let rng = Prng.create ~seed:2024 in
  let attempted = ref 0 in
  for _ = 1 to n_transfers do
    let src = rids.(Prng.int rng n_accounts) and dst = rids.(Prng.int rng n_accounts) in
    let amount = 1 + Prng.int rng 50 in
    if src <> dst then begin
      incr attempted;
      Db.submit ~isolation:Txnmgr.Repeatable_read db (fun txn ->
          let bal rid =
            match Table.get accounts txn ~rid with
            | Some row -> ( match row.(1) with Value.Int v -> v | _ -> 0)
            | None -> 0
          in
          let src_balance = bal src in
          if src_balance >= amount then begin
            ignore (Table.update accounts txn ~rid:src [ ("balance", Value.Int (src_balance - amount)) ]);
            let dst_balance = bal dst in
            ignore (Table.update accounts txn ~rid:dst [ ("balance", Value.Int (dst_balance + amount)) ])
          end)
    end
  done;
  Db.run db;

  let total = Array.fold_left (fun acc rid -> acc + balance db accounts rid) 0 rids in
  Printf.printf "ran %d transfers: %d commits, %d aborts (deadlocks/conflicts, retried)\n"
    !attempted (Db.committed db) (Db.aborted db);
  Printf.printf "total money: %d (expected %d) -- %s\n" total (n_accounts * initial_balance)
    (if total = n_accounts * initial_balance then "conserved" else "VIOLATED");

  (* Show the isolation-level difference on one account. *)
  print_endline "\n-- read committed vs repeatable read --";
  let rid = rids.(0) in
  let q = Scheduler.Waitq.create () in
  let rc = ref (0, 0) and rr = ref (0, 0) in
  let reader isolation cell =
    Scheduler.submit (Db.scheduler db) (fun () ->
        let txn = Txnmgr.begin_txn (Db.txnmgr db) ~isolation ~slot:(Scheduler.current_slot ()) in
        let read () =
          match Table.get accounts txn ~rid with
          | Some row -> ( match row.(1) with Value.Int v -> v | _ -> 0)
          | None -> 0
        in
        let before = read () in
        Scheduler.Waitq.wait q;
        cell := (before, read ());
        Txnmgr.commit (Db.txnmgr db) txn)
  in
  reader Txnmgr.Read_committed rc;
  reader Txnmgr.Repeatable_read rr;
  Scheduler.submit (Db.scheduler db) (fun () ->
      Scheduler.charge Phoebe_sim.Component.Effective 200_000;
      Db.with_txn db (fun txn ->
          ignore
            (Table.update_with accounts txn ~rid (fun row ->
                 match row.(1) with Value.Int v -> [ ("balance", Value.Int (v + 777)) ] | _ -> [])));
      Scheduler.Waitq.signal_all q);
  Db.run db;
  let rc_before, rc_after = !rc and rr_before, rr_after = !rr in
  Printf.printf "read committed : first read %d, after concurrent commit %d (sees new data)\n"
    rc_before rc_after;
  Printf.printf "repeatable read: first read %d, after concurrent commit %d (stable snapshot)\n"
    rr_before rr_after
