(* HTAP analytics (the paper's future-work item 3 and §3 "Future HTAP
   Potential"): OLTP keeps writing while columnar aggregates run over
   the same table — frozen blocks serve compressed column scans, hot
   PAX pages serve the fresh tail, and MVCC keeps the answers
   transactionally consistent.

   Run with: dune exec examples/analytics.exe *)
open Phoebe_core
module A = Phoebe_analytics.Analytics
module Value = Phoebe_storage.Value

let () =
  print_endline "== HTAP: columnar analytics over a live OLTP table ==";
  let cfg = { Config.default with Config.n_workers = 4; slots_per_worker = 8 } in
  let db = Db.create cfg in
  let sales =
    Db.create_table db ~name:"sales"
      ~schema:[ ("day", Value.T_int); ("region", Value.T_str); ("amount", Value.T_float) ]
  in
  let regions = [| "emea"; "apac"; "amer" |] in
  let rng = Phoebe_util.Prng.create ~seed:77 in
  Db.with_txn db (fun txn ->
      for day = 1 to 10_000 do
        ignore
          (Table.insert sales txn
             [|
               Value.Int day;
               Value.Str regions.(Phoebe_util.Prng.int rng 3);
               Value.Float (float_of_int (Phoebe_util.Prng.int rng 100_000) /. 100.0);
             |])
      done);
  (* the history goes cold and freezes into compressed blocks *)
  for _ = 1 to 8 do
    Phoebe_btree.Table_tree.decay_access_counts (Table.tree sales)
  done;
  ignore (Db.freeze_tables db);
  Printf.printf "loaded 10000 sales; %d rows frozen (%.1fx compressed), %d hot/cold rows\n"
    (A.tier_rows db sales ~frozen:true)
    (Phoebe_btree.Table_tree.compression_ratio (Table.tree sales))
    (A.tier_rows db sales ~frozen:false);

  (* OLTP keeps flowing while we aggregate *)
  for _ = 1 to 200 do
    Db.submit db (fun txn ->
        ignore
          (Table.insert sales txn
             [|
               Value.Int 10_001;
               Value.Str regions.(Phoebe_util.Prng.int rng 3);
               Value.Float 500.0;
             |]))
  done;
  Db.run db;

  Db.with_txn db (fun txn ->
      let agg = A.aggregate_column db sales txn ~col:"amount" in
      Printf.printf "revenue: n=%d sum=%.2f min=%.2f max=%.2f avg=%.2f\n" agg.A.count agg.A.sum
        agg.A.min agg.A.max
        (agg.A.sum /. float_of_int agg.A.count);
      Printf.printf "by region:\n";
      List.iter
        (fun (region, n) -> Printf.printf "  %-6s %6d sales\n" (Value.to_string region) n)
        (A.group_count db sales txn ~col:"region"));

  (* the columnar path vs a row-wise SQL-style scan, in real time *)
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Db.with_txn db (fun txn ->
      let (colsum : float), col_t =
        time (fun () -> (A.aggregate_column db sales txn ~col:"amount").A.sum)
      in
      let rowsum, row_t =
        time (fun () ->
            let s = ref 0.0 in
            Table.scan sales txn (fun _ row ->
                match row.(2) with Value.Float x -> s := !s +. x | _ -> ());
            !s)
      in
      Printf.printf "columnar sum %.2f in %.2f ms; row-wise sum %.2f in %.2f ms (%.1fx)\n" colsum
        (col_t *. 1e3) rowsum (row_t *. 1e3)
        (row_t /. Float.max 1e-9 col_t))
