(* Temperature tiers: the hot / cold / frozen storage lifecycle (paper
   §5.2). Loads an append-mostly event table, lets the old prefix go
   cold, freezes it into compressed blocks, and shows that reads,
   updates and scans work transparently across tiers — updates of frozen
   rows go out-of-place back into hot storage.

   Run with: dune exec examples/temperature_tiers.exe *)
open Phoebe_core
module Value = Phoebe_storage.Value
module Table_tree = Phoebe_btree.Table_tree
module Bufmgr = Phoebe_storage.Bufmgr

let n_events = 20_000

let () =
  print_endline "== temperature tiers: hot / cold / frozen ==";
  let cfg =
    { Config.default with Config.n_workers = 2; slots_per_worker = 8; buffer_bytes = 512 * 1024 }
  in
  let db = Db.create cfg in
  let events =
    Db.create_table db ~name:"events"
      ~schema:
        [ ("ts", Value.T_int); ("device", Value.T_int); ("kind", Value.T_str); ("reading", Value.T_float) ]
  in
  Db.create_index db events ~name:"events_by_device" ~cols:[ "device"; "ts" ] ~unique:true;

  (* Time-series-style load: low-cardinality kind column compresses well. *)
  let kinds = [| "temp"; "humidity"; "vibration" |] in
  let rng = Phoebe_util.Prng.create ~seed:5 in
  let chunk = 500 in
  let k = ref 0 in
  while !k < n_events do
    Db.with_txn db (fun txn ->
        for _ = 1 to min chunk (n_events - !k) do
          incr k;
          ignore
            (Table.insert events txn
               [|
                 Value.Int !k;
                 Value.Int (!k mod 50);
                 Value.Str kinds.(!k mod 3);
                 Value.Float (float_of_int (Phoebe_util.Prng.int rng 1000) /. 10.0);
               |])
        done)
  done;
  let tree = Table.tree events in
  Printf.printf "loaded %d events into %d PAX leaves (buffer resident: %d KB of %d KB budget)\n"
    n_events (Table_tree.leaf_count tree)
    (Bufmgr.resident_bytes (Db.buffer db) / 1024)
    (cfg.Config.buffer_bytes / 1024);

  (* The tiny buffer forces most leaves to the Data Page File (cold);
     eviction spares recently-touched frames, so let a little virtual
     time pass first. *)
  Db.run_for db ~ns:2_000_000;
  Bufmgr.maintain (Db.buffer db) ~partition:0;
  Bufmgr.maintain (Db.buffer db) ~partition:1;
  Bufmgr.maintain (Db.buffer db) ~partition:0;
  Bufmgr.maintain (Db.buffer db) ~partition:1;
  Printf.printf "after eviction: %d KB resident, %d pages in the Data Page File\n"
    (Bufmgr.resident_bytes (Db.buffer db) / 1024)
    (Phoebe_io.Pagestore.page_count (Bufmgr.store (Db.buffer db)));

  (* Keep recent events hot, then freeze the cold historical prefix. *)
  for _ = 1 to 8 do
    Table_tree.decay_access_counts tree
  done;
  for _ = 1 to 200 do
    ignore
      (Db.with_txn db (fun txn ->
           Table.get events txn ~rid:(n_events - Phoebe_util.Prng.int rng 500)))
  done;
  let frozen = Db.freeze_tables db in
  Printf.printf "froze %d tuples into %d compressed blocks (compression ratio %.1fx)\n" frozen
    (Table_tree.frozen_block_count tree)
    (Table_tree.compression_ratio tree);
  Printf.printf "max_frozen_row_id = %d of %d\n" (Table_tree.max_frozen_row_id tree) n_events;

  (* Reads hit the frozen tier transparently. *)
  Db.with_txn db (fun txn ->
      match Table.get events txn ~rid:10 with
      | Some row ->
        Printf.printf "frozen read rid=10: ts=%s kind=%s reading=%s\n"
          (Value.to_string row.(0)) (Value.to_string row.(2)) (Value.to_string row.(3))
      | None -> print_endline "frozen read failed?!");

  (* Updating a frozen row: out-of-place — the frozen copy is
     delete-marked and the new version re-inserted into hot storage. *)
  let live_before = Table_tree.tuple_count_estimate tree in
  let updated =
    Db.with_txn db (fun txn -> Table.update events txn ~rid:10 [ ("kind", Value.Str "corrected") ])
  in
  Printf.printf "frozen update rid=10: %b (live tuples %d -> %d; the row moved to hot storage)\n"
    updated live_before (Table_tree.tuple_count_estimate tree);

  (* Scans cross all three tiers in row-id order and see the update. *)
  Db.with_txn db (fun txn ->
      let total = ref 0 and corrected = ref 0 in
      Table.scan events txn (fun _ row ->
          incr total;
          if row.(2) = Value.Str "corrected" then incr corrected);
      Printf.printf "scan across tiers: %d live rows, %d corrected\n" !total !corrected);

  let s = Db.stats db in
  Printf.printf "device traffic: data read %d KB, written %d KB; blocks written %d KB\n"
    (Phoebe_io.Device.total_bytes (Db.data_device db) Phoebe_io.Device.Read / 1024)
    (Phoebe_io.Device.total_bytes (Db.data_device db) Phoebe_io.Device.Write / 1024)
    (s.Db.wal_bytes / 1024)
