(* SQL interface demo (the paper's future-work item 1): DDL, DML,
   index-backed point and range queries, aggregates, explicit
   transactions, and EXPLAIN-style plan inspection — all over the
   PhoebeDB kernel.

   Run with: dune exec examples/sql_demo.exe *)
open Phoebe_core
module Sql = Phoebe_sql.Sql
module Value = Phoebe_storage.Value

let show result =
  match result with
  | Sql.Done msg -> Printf.printf "-- %s\n" msg
  | Sql.Affected n -> Printf.printf "-- %d row(s)\n" n
  | Sql.Rows (headers, rows) ->
    Printf.printf "%s\n" (String.concat " | " headers);
    List.iter
      (fun row ->
        Printf.printf "%s\n"
          (String.concat " | " (Array.to_list (Array.map Value.to_string row))))
      rows

let run s sql =
  Printf.printf "\nphoebe> %s\n" sql;
  try show (Sql.exec s sql) with Sql.Error m -> Printf.printf "ERROR: %s\n" m

let () =
  print_endline "== PhoebeDB SQL ==";
  let db = Db.create Config.default in
  let s = Sql.session db in
  run s "CREATE TABLE employees (id INT, name TEXT, dept TEXT, salary FLOAT)";
  run s "CREATE UNIQUE INDEX employees_pk ON employees (id)";
  run s "CREATE INDEX employees_by_dept ON employees (dept)";
  run s
    "INSERT INTO employees VALUES (1, 'ada', 'eng', 120000.0), (2, 'grace', 'eng', 130000.0), \
     (3, 'alan', 'research', 110000.0), (4, 'edsger', 'research', 115000.0), (5, 'barbara', \
     'eng', 125000.0)";
  run s "SELECT * FROM employees WHERE id = 2";
  Printf.printf "   plan: %s\n" (Sql.explain s "SELECT * FROM employees WHERE id = 2");
  run s "SELECT name, salary FROM employees WHERE dept = 'eng' ORDER BY salary DESC";
  Printf.printf "   plan: %s\n"
    (Sql.explain s "SELECT name, salary FROM employees WHERE dept = 'eng'");
  run s "SELECT count(*), avg(salary) FROM employees";
  run s "SELECT dept, count(*), max(salary) FROM employees GROUP BY dept";
  run s "UPDATE employees SET salary = salary + 5000 WHERE dept = 'research'";
  run s "SELECT name, salary FROM employees WHERE salary >= 115000 ORDER BY name";
  (* explicit transaction with rollback *)
  run s "BEGIN";
  run s "DELETE FROM employees WHERE dept = 'eng'";
  run s "SELECT count(*) FROM employees";
  run s "ROLLBACK";
  run s "SELECT count(*) FROM employees";
  (* constraint violation aborts the statement *)
  run s "INSERT INTO employees VALUES (1, 'dup', 'eng', 1.0)";
  run s "SHOW TABLES"
