(* Inventory: an order-processing workload on the public API — composite
   secondary indexes, prefix scans, read-modify-write stock reservation,
   and reporting via visibility-filtered scans. A miniature of the
   workloads the paper's introduction motivates (e-commerce OLTP).

   Run with: dune exec examples/inventory.exe *)
open Phoebe_core
module Value = Phoebe_storage.Value
module Txnmgr = Phoebe_txn.Txnmgr
module Prng = Phoebe_util.Prng

let n_products = 200
let n_customers = 40
let n_orders = 1_500

let () =
  print_endline "== inventory: order processing ==";
  let cfg = { Config.default with Config.n_workers = 4; slots_per_worker = 16 } in
  let db = Db.create cfg in
  let products =
    Db.create_table db ~name:"products"
      ~schema:[ ("sku", Value.T_str); ("price", Value.T_float); ("in_stock", Value.T_int) ]
  in
  Db.create_index db products ~name:"products_by_sku" ~cols:[ "sku" ] ~unique:true;
  let orders =
    Db.create_table db ~name:"orders"
      ~schema:
        [
          ("customer", Value.T_int); ("seq", Value.T_int); ("product_rid", Value.T_int);
          ("quantity", Value.T_int); ("total", Value.T_float); ("status", Value.T_str);
        ]
  in
  Db.create_index db orders ~name:"orders_by_customer" ~cols:[ "customer"; "seq" ] ~unique:true;

  let rng = Prng.create ~seed:99 in
  let product_rids =
    Array.init n_products (fun i ->
        Db.with_txn db (fun txn ->
            Table.insert products txn
              [|
                Value.Str (Printf.sprintf "SKU-%04d" i);
                Value.Float (5.0 +. float_of_int (Prng.int rng 200));
                Value.Int (20 + Prng.int rng 80);
              |]))
  in
  Printf.printf "loaded %d products\n" n_products;

  (* Concurrent order placement: reserve stock atomically; an order for
     more units than available is rejected (the transaction still
     commits an order row with status=rejected). *)
  let seqs = Array.make n_customers 0 in
  let placed = ref 0 and rejected = ref 0 in
  for _ = 1 to n_orders do
    let customer = Prng.int rng n_customers in
    let product = product_rids.(Prng.int rng n_products) in
    let quantity = 1 + Prng.int rng 5 in
    seqs.(customer) <- seqs.(customer) + 1;
    let seq = seqs.(customer) in
    Db.submit ~isolation:Txnmgr.Repeatable_read db (fun txn ->
        let price =
          match Table.get products txn ~rid:product with
          | Some row -> ( match row.(1) with Value.Float p -> p | _ -> 0.0)
          | None -> 0.0
        in
        let reserved = ref false in
        ignore
          (Table.update_with products txn ~rid:product (fun row ->
               match row.(2) with
               | Value.Int stock when stock >= quantity ->
                 reserved := true;
                 [ ("in_stock", Value.Int (stock - quantity)) ]
               | _ -> []));
        let status = if !reserved then "placed" else "rejected" in
        if !reserved then incr placed else incr rejected;
        ignore
          (Table.insert orders txn
             [|
               Value.Int customer; Value.Int seq; Value.Int product; Value.Int quantity;
               Value.Float (float_of_int quantity *. price); Value.Str status;
             |]))
  done;
  Db.run db;
  Printf.printf "orders: %d placed, %d rejected (out of stock), %d txn aborts retried\n" !placed
    !rejected (Db.aborted db);

  (* Reporting: one customer's order history through the composite index. *)
  let report_customer = 7 in
  Db.with_txn db (fun txn ->
      Printf.printf "order history for customer %d:\n" report_customer;
      Table.index_prefix orders txn ~index:"orders_by_customer"
        ~prefix:[ Value.Int report_customer ] (fun _ row ->
          Printf.printf "  #%-3s qty=%-2s total=%8s  %s\n"
            (Value.to_string row.(1)) (Value.to_string row.(3)) (Value.to_string row.(4))
            (Value.to_string row.(5));
          true));

  (* Inventory low-stock report via a full scan (never warms pages). *)
  Db.with_txn db (fun txn ->
      let low = ref 0 and total_units = ref 0 in
      Table.scan products txn (fun _ row ->
          match row.(2) with
          | Value.Int s ->
            total_units := !total_units + s;
            if s < 5 then incr low
          | _ -> ());
      Printf.printf "stock: %d units remaining across %d products; %d products low (<5)\n"
        !total_units n_products !low);

  (* Conservation check: units reserved + units remaining = initial. *)
  let reserved_units =
    Db.with_txn db (fun txn ->
        let n = ref 0 in
        Table.scan orders txn (fun _ row ->
            if row.(5) = Value.Str "placed" then
              match row.(3) with Value.Int q -> n := !n + q | _ -> ());
        !n)
  in
  let remaining =
    Db.with_txn db (fun txn ->
        let n = ref 0 in
        Table.scan products txn (fun _ row ->
            match row.(2) with Value.Int s -> n := !n + s | _ -> ());
        !n)
  in
  Printf.printf "invariant: reserved (%d) + remaining (%d) = %d\n" reserved_units remaining
    (reserved_units + remaining)
