bench/main.mli:
