(* Command-line TPC-C driver for the PhoebeDB kernel: the HammerDB of
   this reproduction. Loads a scaled TPC-C database, runs the standard
   mix for a virtual-time window, and reports tpmC/tpm plus kernel
   statistics and consistency checks.

     dune exec bin/phoebe_tpcc.exe -- --warehouses 10 --workers 10 --seconds 1
     dune exec bin/phoebe_tpcc.exe -- --engine pg --warehouses 10 --workers 10 *)
open Cmdliner
module T = Phoebe_tpcc.Tpcc
module Db = Phoebe_core.Db
module Config = Phoebe_core.Config
module Component = Phoebe_sim.Component
module Counters = Phoebe_sim.Counters

type engine_kind = Phoebe | Pg | Odb

let run engine warehouses workers slots seconds concurrency affinity thread_model seed verbose =
  let cfg =
    match engine with
    | Phoebe ->
      {
        Config.default with
        Config.n_workers = workers;
        slots_per_worker = slots;
        model =
          (if thread_model then Phoebe_runtime.Scheduler.Thread
           else Phoebe_runtime.Scheduler.Coroutine);
        buffer_bytes = max (16 * 1024 * 1024) (warehouses * 4 * 1024 * 1024);
      }
    | Pg -> Phoebe_baseline.Baseline.pg_like ~workers ()
    | Odb -> Phoebe_baseline.Baseline.odb_like ~workers ()
  in
  let db = Db.create cfg in
  Printf.printf "loading %d warehouses (scaled cardinalities: %d districts x %d customers, %d items)...\n%!"
    warehouses T.default_scale.T.districts_per_warehouse
    T.default_scale.T.customers_per_district T.default_scale.T.items;
  let t = T.load db ~warehouses ~scale:T.default_scale ~seed () in
  let concurrency =
    match concurrency with Some c -> c | None -> workers * min slots 4
  in
  Printf.printf "running the standard mix: %d virtual users, %.1f virtual seconds, affinity=%b\n%!"
    concurrency seconds affinity;
  let before = Counters.snapshot (Phoebe_runtime.Scheduler.counters (Db.scheduler db)) in
  let r =
    T.run_mix t ~affinity ~concurrency ~duration_ns:(int_of_float (seconds *. 1e9)) ~seed ()
  in
  Printf.printf "\n=== results (%.2f virtual seconds) ===\n" r.T.duration_s;
  Printf.printf "tpmC        : %.0f  (committed NewOrders per virtual minute)\n" r.T.tpmc;
  Printf.printf "tpm (total) : %.0f\n" r.T.tpm_total;
  Printf.printf "committed   : %d   aborted: %d\n" r.T.total_committed r.T.aborted;
  Printf.printf "latency     : p50 %.0f us, p99 %.0f us\n" r.T.latency_p50_us r.T.latency_p99_us;
  List.iter
    (fun (k, n) -> Printf.printf "  %-12s %d\n" (T.kind_name k) n)
    r.T.per_kind;
  let s = Db.stats db in
  Printf.printf "cpu utilisation : %.1f%%\n" (100.0 *. s.Db.cpu_busy_fraction);
  Printf.printf "WAL             : %d records, %.1f MB, RFA local=%d remote=%d\n" s.Db.wal_records
    (float_of_int s.Db.wal_bytes /. 1e6)
    s.Db.rfa_local_commits s.Db.rfa_remote_waits;
  Printf.printf "buffer resident : %.1f MB\n" (float_of_int s.Db.buffer_resident_bytes /. 1e6);
  if verbose then begin
    let after = Counters.snapshot (Phoebe_runtime.Scheduler.counters (Db.scheduler db)) in
    let diff = Counters.diff before after in
    Printf.printf "\ninstructions per committed transaction:\n";
    List.iter
      (fun (c, instr, share) ->
        Printf.printf "  %-10s %8d (%.1f%%)\n" (Component.to_string c)
          (instr / max 1 r.T.total_committed)
          (100.0 *. share))
      (Counters.breakdown diff)
  end;
  Printf.printf "\nconsistency checks (TPC-C 3.3.2):\n";
  let all_ok = ref true in
  List.iter
    (fun (name, ok) ->
      if not ok then all_ok := false;
      Printf.printf "  %-32s %s\n" name (if ok then "OK" else "VIOLATED"))
    (T.consistency_checks t);
  if !all_ok then 0 else 1

let engine_conv =
  Arg.enum [ ("phoebe", Phoebe); ("pg", Pg); ("odb", Odb) ]

let cmd =
  let engine =
    Arg.(value & opt engine_conv Phoebe & info [ "engine" ] ~doc:"Kernel: phoebe, pg, odb.")
  in
  let warehouses = Arg.(value & opt int 4 & info [ "w"; "warehouses" ] ~doc:"TPC-C warehouses.") in
  let workers = Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker threads.") in
  let slots = Arg.(value & opt int 32 & info [ "slots" ] ~doc:"Task slots per worker.") in
  let seconds =
    Arg.(value & opt float 1.0 & info [ "seconds" ] ~doc:"Virtual run duration in seconds.")
  in
  let concurrency =
    Arg.(value & opt (some int) None & info [ "concurrency" ] ~doc:"Outstanding transactions.")
  in
  let affinity =
    Arg.(value & opt bool true & info [ "affinity" ] ~doc:"Bind warehouses to workers.")
  in
  let thread_model =
    Arg.(value & flag & info [ "thread-model" ] ~doc:"Thread execution model (Exp 6 baseline).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-component breakdown.") in
  let doc = "Run TPC-C against the PhoebeDB kernel (simulated hardware)." in
  Cmd.v
    (Cmd.info "phoebe_tpcc" ~doc)
    Term.(
      const run $ engine $ warehouses $ workers $ slots $ seconds $ concurrency $ affinity
      $ thread_model $ seed $ verbose)

let () = exit (Cmd.eval' cmd)
