(* A minimal SQL shell over the PhoebeDB kernel: feed it statements on
   stdin (semicolon-terminated; also accepts a whole script via a pipe).

     echo "CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t;" \
       | dune exec bin/phoebe_sql_shell.exe *)
module Sql = Phoebe_sql.Sql
module Value = Phoebe_storage.Value

let print_result = function
  | Sql.Done msg -> Printf.printf "%s\n" msg
  | Sql.Affected n -> Printf.printf "%d row(s)\n" n
  | Sql.Rows (headers, rows) ->
    let render row = List.map Value.to_string (Array.to_list row) in
    let all = headers :: List.map render rows in
    let widths =
      List.fold_left
        (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
        (List.map (fun _ -> 0) headers)
        all
    in
    let line row =
      String.concat " | " (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
    in
    Printf.printf "%s\n%s\n" (line headers) (String.make (String.length (line headers)) '-');
    List.iter (fun row -> Printf.printf "%s\n" (line row)) (List.map render rows);
    Printf.printf "(%d row(s))\n" (List.length rows)

let () =
  let db = Phoebe_core.Db.create Phoebe_core.Config.default in
  let session = Sql.session db in
  let interactive = Unix.isatty Unix.stdin in
  if interactive then print_endline "PhoebeDB SQL shell -- end statements with ';', Ctrl-D to quit.";
  let buf = Buffer.create 256 in
  (try
     while true do
       if interactive then (
         print_string (if Buffer.length buf = 0 then "phoebe> " else "   ...> ");
         flush stdout);
       let line = input_line stdin in
       Buffer.add_string buf line;
       Buffer.add_char buf '\n';
       if String.contains line ';' then begin
         let script = Buffer.contents buf in
         Buffer.clear buf;
         match Sql.exec_script session script with
         | results -> List.iter print_result results
         | exception Sql.Error m -> Printf.printf "ERROR: %s\n" m
       end
     done
   with End_of_file -> ());
  if Buffer.length buf > 0 then
    match Sql.exec_script session (Buffer.contents buf) with
    | results -> List.iter print_result results
    | exception Sql.Error m -> Printf.printf "ERROR: %s\n" m
