(** SQL execution over the PhoebeDB kernel — the paper's future-work
    item 1, built on the public {!Phoebe_core.Table} API.

    Planning is OLTP-shaped: a conjunctive WHERE clause is matched
    against the table's secondary indexes; the index whose key prefix is
    fully bound by equality predicates (optionally followed by one range
    predicate) serves the query as a point/prefix/range probe, and the
    remaining predicates are applied as residual filters. With no usable
    index, the statement falls back to a visibility-filtered full scan
    (which never warms pages).

    Sessions give PostgreSQL-style transaction semantics: autocommit per
    statement, or explicit [BEGIN;]…[COMMIT;]/[ROLLBACK;]. MVCC aborts
    inside an explicit transaction surface as {!Error}; autocommitted
    statements retry internally like every kernel transaction. *)

type session

val session : Phoebe_core.Db.t -> session

type result =
  | Rows of string list * Phoebe_storage.Value.t array list
      (** column headers and result rows, in result order *)
  | Affected of int  (** rows touched by INSERT / UPDATE / DELETE *)
  | Done of string  (** DDL / transaction-control acknowledgement *)

exception Error of string
(** Parse, binding, or execution failure. The session transaction (if
    any) is rolled back before this is raised. *)

val exec : session -> string -> result
(** Execute exactly one statement. *)

val exec_script : session -> string -> result list
(** Execute a semicolon-separated batch, stopping at the first error. *)

val in_transaction : session -> bool

(** {1 Plan introspection (for tests and EXPLAIN-style tooling)} *)

type access_path =
  | Full_scan
  | Index_probe of { index : string; prefix_len : int; ranged : bool }

val plan_of_select : Phoebe_core.Db.t -> Ast.select -> access_path

val explain : session -> string -> string
(** Human-readable access path for a SELECT. *)
