(** SQL tokenizer. Keywords are case-insensitive; identifiers are
    lower-cased; strings use single quotes with [''] escaping. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Keyword of string  (** upper-cased *)
  | Symbol of string  (** punctuation and operators: ( ) , ; * = <> <= >= < > + - . *)
  | Eof

exception Lex_error of string

val tokenize : string -> token list

val pp_token : token -> string
