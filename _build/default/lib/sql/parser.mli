(** Recursive-descent parser for the SQL subset (see {!Ast}). *)

exception Parse_error of string

val parse : string -> Ast.statement list
(** Parse one or more semicolon-separated statements.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)

val parse_one : string -> Ast.statement
(** Exactly one statement. *)
