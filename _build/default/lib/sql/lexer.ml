type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Keyword of string
  | Symbol of string
  | Eof

exception Lex_error of string

let keywords =
  [
    "CREATE"; "TABLE"; "INDEX"; "UNIQUE"; "ON"; "INSERT"; "INTO"; "VALUES"; "SELECT"; "FROM";
    "WHERE"; "AND"; "ORDER"; "BY"; "ASC"; "DESC"; "LIMIT"; "GROUP"; "UPDATE"; "SET"; "DELETE";
    "BEGIN"; "COMMIT"; "ROLLBACK"; "INT"; "INTEGER"; "FLOAT"; "REAL"; "TEXT"; "VARCHAR"; "BOOL";
    "BOOLEAN"; "TRUE"; "FALSE"; "NULL"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "SHOW"; "TABLES";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* -- comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (Keyword upper)
      else emit (Ident (String.lowercase_ascii word))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        emit (Float_lit (float_of_string (String.sub src start (!i - start))))
      end
      else emit (Int_lit (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error "unterminated string literal");
      emit (String_lit (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "!=" ->
        emit (Symbol (if two = "!=" then "<>" else two));
        i := !i + 2
      | _ -> (
        match c with
        | '(' | ')' | ',' | ';' | '*' | '=' | '<' | '>' | '+' | '-' | '.' ->
          emit (Symbol (String.make 1 c));
          incr i
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c)))
    end
  done;
  List.rev (Eof :: !tokens)

let pp_token = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit v -> string_of_int v
  | Float_lit v -> string_of_float v
  | String_lit s -> Printf.sprintf "'%s'" s
  | Keyword k -> k
  | Symbol s -> Printf.sprintf "%S" s
  | Eof -> "<end of input>"
