lib/sql/sql.mli: Ast Phoebe_core Phoebe_storage
