lib/sql/ast.ml:
