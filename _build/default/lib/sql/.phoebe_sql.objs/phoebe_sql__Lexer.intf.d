lib/sql/lexer.mli:
