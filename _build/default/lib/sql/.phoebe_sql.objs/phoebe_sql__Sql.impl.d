lib/sql/sql.ml: Array Ast Hashtbl Lexer List Option Parser Phoebe_core Phoebe_storage Phoebe_txn Printf
