open Ast

exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_kw st kw =
  match peek st with
  | Lexer.Keyword k when k = kw -> advance st
  | t -> fail "expected %s, found %s" kw (Lexer.pp_token t)

let accept_kw st kw =
  match peek st with
  | Lexer.Keyword k when k = kw ->
    advance st;
    true
  | _ -> false

let expect_sym st sym =
  match peek st with
  | Lexer.Symbol s when s = sym -> advance st
  | t -> fail "expected %S, found %s" sym (Lexer.pp_token t)

let accept_sym st sym =
  match peek st with
  | Lexer.Symbol s when s = sym ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.Ident name ->
    advance st;
    name
  | t -> fail "expected an identifier, found %s" (Lexer.pp_token t)

let literal st =
  match peek st with
  | Lexer.Int_lit v ->
    advance st;
    L_int v
  | Lexer.Float_lit v ->
    advance st;
    L_float v
  | Lexer.String_lit s ->
    advance st;
    L_string s
  | Lexer.Keyword "TRUE" ->
    advance st;
    L_bool true
  | Lexer.Keyword "FALSE" ->
    advance st;
    L_bool false
  | Lexer.Keyword "NULL" ->
    advance st;
    L_null
  | Lexer.Symbol "-" -> (
    advance st;
    match peek st with
    | Lexer.Int_lit v ->
      advance st;
      L_int (-v)
    | Lexer.Float_lit v ->
      advance st;
      L_float (-.v)
    | t -> fail "expected a number after '-', found %s" (Lexer.pp_token t))
  | t -> fail "expected a literal, found %s" (Lexer.pp_token t)

let col_type st =
  match peek st with
  | Lexer.Keyword ("INT" | "INTEGER") ->
    advance st;
    T_int
  | Lexer.Keyword ("FLOAT" | "REAL") ->
    advance st;
    T_float
  | Lexer.Keyword ("TEXT" | "VARCHAR") ->
    advance st;
    (* tolerate VARCHAR(n) *)
    if accept_sym st "(" then begin
      (match peek st with Lexer.Int_lit _ -> advance st | _ -> fail "expected a length");
      expect_sym st ")"
    end;
    T_text
  | Lexer.Keyword ("BOOL" | "BOOLEAN") ->
    advance st;
    T_bool
  | t -> fail "expected a column type, found %s" (Lexer.pp_token t)

let comma_list st parse_item =
  let rec go acc =
    let item = parse_item st in
    if accept_sym st "," then go (item :: acc) else List.rev (item :: acc)
  in
  go []

let cmp_op st =
  match peek st with
  | Lexer.Symbol "=" ->
    advance st;
    Eq
  | Lexer.Symbol "<>" ->
    advance st;
    Ne
  | Lexer.Symbol "<=" ->
    advance st;
    Le
  | Lexer.Symbol ">=" ->
    advance st;
    Ge
  | Lexer.Symbol "<" ->
    advance st;
    Lt
  | Lexer.Symbol ">" ->
    advance st;
    Gt
  | t -> fail "expected a comparison operator, found %s" (Lexer.pp_token t)

let where_clause st =
  if accept_kw st "WHERE" then begin
    let rec go acc =
      let pcol = ident st in
      let op = cmp_op st in
      let value = literal st in
      let acc = { pcol; op; value } :: acc in
      if accept_kw st "AND" then go acc else List.rev acc
    in
    go []
  end
  else []

(* scalar expressions for UPDATE ... SET: left-associative + - over
   atoms (literal | column | parenthesised), with * binding tighter *)
let rec scalar_expr st =
  let lhs = term st in
  let rec go lhs =
    if accept_sym st "+" then go (E_add (lhs, term st))
    else if accept_sym st "-" then go (E_sub (lhs, term st))
    else lhs
  in
  go lhs

and term st =
  let lhs = atom st in
  let rec go lhs = if accept_sym st "*" then go (E_mul (lhs, atom st)) else lhs in
  go lhs

and atom st =
  match peek st with
  | Lexer.Ident name ->
    advance st;
    E_col name
  | Lexer.Symbol "(" ->
    advance st;
    let e = scalar_expr st in
    expect_sym st ")";
    e
  | _ -> E_lit (literal st)

let agg_fn st kw =
  advance st;
  expect_sym st "(";
  let fn =
    match kw with
    | "COUNT" ->
      if accept_sym st "*" then Count_star
      else Count (ident st)
    | "SUM" -> Sum (ident st)
    | "AVG" -> Avg (ident st)
    | "MIN" -> Min (ident st)
    | "MAX" -> Max (ident st)
    | _ -> fail "unknown aggregate %s" kw
  in
  expect_sym st ")";
  fn

let select_item st =
  match peek st with
  | Lexer.Symbol "*" ->
    advance st;
    S_star
  | Lexer.Keyword (("COUNT" | "SUM" | "AVG" | "MIN" | "MAX") as kw) -> S_agg (agg_fn st kw)
  | _ -> S_col (ident st)

let select st =
  let items = comma_list st select_item in
  expect_kw st "FROM";
  let from_table = ident st in
  let where = where_clause st in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      Some (ident st)
    end
    else None
  in
  let order =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let ocol = ident st in
      let descending = if accept_kw st "DESC" then true else (ignore (accept_kw st "ASC"); false) in
      Some { ocol; descending }
    end
    else None
  in
  let limit =
    if accept_kw st "LIMIT" then
      match peek st with
      | Lexer.Int_lit v ->
        advance st;
        Some v
      | t -> fail "expected a number after LIMIT, found %s" (Lexer.pp_token t)
    else None
  in
  { items; from_table; where; group_by; order; limit }

let statement st =
  match peek st with
  | Lexer.Keyword "CREATE" -> (
    advance st;
    let unique = accept_kw st "UNIQUE" in
    match peek st with
    | Lexer.Keyword "TABLE" when not unique ->
      advance st;
      let tname = ident st in
      expect_sym st "(";
      let columns =
        comma_list st (fun st ->
            let name = ident st in
            let ty = col_type st in
            (name, ty))
      in
      expect_sym st ")";
      Create_table { tname; columns }
    | Lexer.Keyword "INDEX" ->
      advance st;
      let iname = ident st in
      expect_kw st "ON";
      let on_table = ident st in
      expect_sym st "(";
      let cols = comma_list st ident in
      expect_sym st ")";
      Create_index { iname; on_table; cols; unique }
    | t -> fail "expected TABLE or INDEX after CREATE, found %s" (Lexer.pp_token t))
  | Lexer.Keyword "INSERT" ->
    advance st;
    expect_kw st "INTO";
    let tname = ident st in
    let columns =
      if accept_sym st "(" then begin
        let cols = comma_list st ident in
        expect_sym st ")";
        Some cols
      end
      else None
    in
    expect_kw st "VALUES";
    let row st =
      expect_sym st "(";
      let vs = comma_list st literal in
      expect_sym st ")";
      vs
    in
    let rows = comma_list st row in
    Insert { tname; columns; rows }
  | Lexer.Keyword "SELECT" ->
    advance st;
    Select (select st)
  | Lexer.Keyword "UPDATE" ->
    advance st;
    let tname = ident st in
    expect_kw st "SET";
    let assignments =
      comma_list st (fun st ->
          let col = ident st in
          expect_sym st "=";
          (col, scalar_expr st))
    in
    let where = where_clause st in
    Update { tname; assignments; where }
  | Lexer.Keyword "DELETE" ->
    advance st;
    expect_kw st "FROM";
    let tname = ident st in
    let where = where_clause st in
    Delete { tname; where }
  | Lexer.Keyword "BEGIN" ->
    advance st;
    Begin
  | Lexer.Keyword "COMMIT" ->
    advance st;
    Commit
  | Lexer.Keyword "ROLLBACK" ->
    advance st;
    Rollback
  | Lexer.Keyword "SHOW" ->
    advance st;
    expect_kw st "TABLES";
    Show_tables
  | t -> fail "expected a statement, found %s" (Lexer.pp_token t)

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec go acc =
    match peek st with
    | Lexer.Eof -> List.rev acc
    | Lexer.Symbol ";" ->
      advance st;
      go acc
    | _ ->
      let s = statement st in
      (match peek st with
      | Lexer.Symbol ";" | Lexer.Eof -> ()
      | t -> fail "unexpected %s after statement" (Lexer.pp_token t));
      go (s :: acc)
  in
  go []

let parse_one src =
  match parse src with
  | [ s ] -> s
  | [] -> fail "empty input"
  | _ -> fail "expected exactly one statement"
