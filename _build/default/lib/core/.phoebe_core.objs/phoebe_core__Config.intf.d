lib/core/config.mli: Phoebe_io Phoebe_runtime Phoebe_sim Phoebe_txn Phoebe_wal
