lib/core/db.mli: Config Phoebe_io Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn Phoebe_wal Table
