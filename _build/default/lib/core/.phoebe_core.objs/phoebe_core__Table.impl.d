lib/core/table.ml: Array Fun Hashtbl List Phoebe_btree Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn Phoebe_wal
