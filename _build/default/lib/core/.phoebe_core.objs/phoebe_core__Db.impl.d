lib/core/db.ml: Array Config Hashtbl List Option Phoebe_io Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn Phoebe_wal Printf Table
