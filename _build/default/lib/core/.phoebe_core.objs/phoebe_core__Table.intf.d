lib/core/table.mli: Phoebe_btree Phoebe_io Phoebe_storage Phoebe_txn Phoebe_wal
