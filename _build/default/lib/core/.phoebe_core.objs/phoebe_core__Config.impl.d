lib/core/config.ml: Phoebe_io Phoebe_runtime Phoebe_sim Phoebe_txn Phoebe_wal
