lib/core/checkpoint.mli: Bytes Config Db Phoebe_wal
