lib/core/checkpoint.ml: Array Buffer Bytes Config Db Fmt List Phoebe_btree Phoebe_storage Phoebe_txn Phoebe_util Phoebe_wal Table
