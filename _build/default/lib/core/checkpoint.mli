(** Checkpoints: bounding crash-recovery replay (the ARIES side of the
    paper's §8 "Non-Force, Steal" design that full-WAL replay alone
    leaves open-ended).

    [take] quiesces nothing by itself — call it at a transaction
    boundary (no active transactions) — then flushes the WAL, writes
    every dirty leaf back to the Data Page File, and serialises a
    catalog image: per table the schema, index definitions, the leaf
    manifest (page ids + separator keys), frozen block ids, row-id
    bounds; plus the per-slot WAL frontier and the logical clock.

    [restore] rebuilds a database over the *surviving stores* (Data Page
    File, Data Block File, WAL) of a crashed instance: tables come back
    with cold leaves faulted on demand, indexes are rebuilt by scan, and
    only WAL records past the checkpoint frontier are replayed. *)

val take : Db.t -> Bytes.t
(** @raise Invalid_argument if transactions are still active. *)

val restore : from:Db.t -> snapshot:Bytes.t -> Config.t -> Db.t * Phoebe_wal.Recovery.report
(** Build a fresh instance attached to [from]'s engine/devices/stores
    (see {!Db.create_attached}), rebuild the catalog from [snapshot],
    and replay the WAL suffix. Returns the new instance and the replay
    report. *)
