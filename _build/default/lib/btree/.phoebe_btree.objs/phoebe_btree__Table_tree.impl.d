lib/btree/table_tree.ml: Array Fun List Phoebe_io Phoebe_runtime Phoebe_sim Phoebe_storage
