lib/btree/table_tree.mli: Phoebe_io Phoebe_storage
