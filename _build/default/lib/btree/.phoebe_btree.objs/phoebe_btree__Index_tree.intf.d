lib/btree/index_tree.mli: Phoebe_storage
