lib/btree/index_tree.ml: Array Buffer Char List Phoebe_runtime Phoebe_sim Phoebe_storage String
