lib/util/stats.mli:
