lib/util/binheap.ml: Array
