lib/util/varint.mli: Buffer Bytes
