lib/util/binheap.mli:
