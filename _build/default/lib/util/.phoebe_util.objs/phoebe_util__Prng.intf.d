lib/util/prng.mli:
