(** LEB128 variable-length integer codec, plus fixed-width helpers.

    Used by the page serialiser, the frozen-block compressor, and the WAL
    record codec. Encoders append to a [Buffer.t]; decoders read from
    [Bytes.t] at an offset and return the new offset. *)

val write_uint : Buffer.t -> int -> unit
(** Unsigned LEB128; the argument must be non-negative. *)

val write_int : Buffer.t -> int -> unit
(** Signed integers via zigzag + LEB128. *)

val write_int64 : Buffer.t -> int64 -> unit
(** Full 64-bit value, zigzag + LEB128. *)

val write_string : Buffer.t -> string -> unit
(** Length-prefixed string. *)

val write_float : Buffer.t -> float -> unit
(** IEEE-754 bits, fixed 8 bytes little-endian. *)

val read_uint : Bytes.t -> int -> int * int
(** [read_uint b off] is [(value, off')]. Raises [Failure] on overrun. *)

val read_int : Bytes.t -> int -> int * int
val read_int64 : Bytes.t -> int -> int64 * int
val read_string : Bytes.t -> int -> string * int
val read_float : Bytes.t -> int -> float * int
