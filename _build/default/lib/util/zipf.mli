(** Skewed integer distributions for workload generation. *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** [create ~theta ~n ()] prepares a Zipfian distribution over
    [\[0, n)] with skew [theta] (default [0.99], the YCSB default).
    Uses the Gray et al. rejection-free method; O(1) per sample. *)

val sample : t -> Prng.t -> int
(** Draw from the distribution; item 0 is the most popular. *)

val n : t -> int

val nurand : Prng.t -> a:int -> c:int -> x:int -> y:int -> int
(** The TPC-C NURand(A, x, y) non-uniform generator (clause 2.1.6) with
    run-time constant [c]. *)
