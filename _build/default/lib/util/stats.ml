module Scalar = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; sum = 0.0; sumsq = 0.0; min = infinity; max = neg_infinity }

  let add t v =
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    t.sumsq <- t.sumsq +. (v *. v);
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let stddev t =
    if t.count < 2 then 0.0
    else
      let n = float_of_int t.count in
      let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
      if var < 0.0 then 0.0 else sqrt var

  let min t = t.min
  let max t = t.max
end

module Histogram = struct
  (* Buckets are [2^(i/4)] pseudo-log spaced: 4 sub-buckets per power of
     two keeps percentile error under ~19%. *)
  let n_buckets = 256

  type t = { buckets : int array; mutable count : int; mutable sum : float }

  let create () = { buckets = Array.make n_buckets 0; count = 0; sum = 0.0 }

  let bucket_of v =
    if v <= 0 then 0
    else
      let b = int_of_float (4.0 *. (Float.log (float_of_int v) /. Float.log 2.0)) in
      if b < 0 then 0 else if b >= n_buckets then n_buckets - 1 else b

  let value_of b = Float.pow 2.0 (float_of_int b /. 4.0)

  let add t v =
    let b = bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. float_of_int v

  let count t = t.count

  let percentile t p =
    if t.count = 0 then 0.0
    else begin
      let target = int_of_float (p *. float_of_int t.count) in
      let acc = ref 0 in
      let result = ref (value_of (n_buckets - 1)) in
      (try
         for b = 0 to n_buckets - 1 do
           acc := !acc + t.buckets.(b);
           if !acc > target then begin
             result := value_of b;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
end

module Series = struct
  type t = { bucket_width : int; tbl : (int, float ref) Hashtbl.t }

  let create ~bucket_width = { bucket_width; tbl = Hashtbl.create 64 }

  let add t ~time v =
    let b = time / t.bucket_width in
    match Hashtbl.find_opt t.tbl b with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add t.tbl b (ref v)

  let buckets t =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] in
    match keys with
    | [] -> []
    | _ ->
      let lo = List.fold_left Stdlib.min (List.hd keys) keys in
      let hi = List.fold_left Stdlib.max (List.hd keys) keys in
      List.init (hi - lo + 1) (fun i ->
          let b = lo + i in
          let v = match Hashtbl.find_opt t.tbl b with Some r -> !r | None -> 0.0 in
          (b * t.bucket_width, v))

  let rate_per_second t =
    let width_s = float_of_int t.bucket_width /. 1e9 in
    List.map (fun (time, v) -> (float_of_int time /. 1e9, v /. width_s)) (buckets t)
end
