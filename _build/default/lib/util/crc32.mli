(** CRC-32 (IEEE 802.3 polynomial) checksums for page and WAL integrity. *)

val bytes : Bytes.t -> pos:int -> len:int -> int
(** Checksum of a byte range; result fits in 32 bits. *)

val string : string -> int
(** Checksum of a whole string. *)
