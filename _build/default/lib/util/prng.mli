(** Deterministic pseudo-random number generation.

    A small, fast, splittable xoshiro256** generator. Every stochastic
    component of the system (workload generators, schedulers, simulators)
    takes an explicit generator so that whole-system runs are reproducible
    from a single seed. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed via splitmix64. *)

val split : t -> t
(** [split t] derives an independent generator; [t] is advanced. *)

val next_int64 : t -> int64
(** Uniform random 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform in [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val alpha_string : t -> min_len:int -> max_len:int -> string
(** Random string of letters and digits, length uniform in the range. *)

val numeric_string : t -> len:int -> string
(** Random string of decimal digits of exactly [len] characters. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
