lib/wal/record.ml: Array Buffer Bytes Fmt Format List Phoebe_storage Phoebe_util Printf
