lib/wal/recovery.ml: List Phoebe_io Phoebe_storage Record
