lib/wal/wal.ml: Array Buffer List Phoebe_io Phoebe_runtime Phoebe_sim Printf Queue Record
