lib/wal/wal.mli: Phoebe_io Phoebe_sim Record
