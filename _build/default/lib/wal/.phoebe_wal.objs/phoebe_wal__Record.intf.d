lib/wal/record.mli: Buffer Bytes Format Phoebe_storage
