lib/wal/recovery.mli: Phoebe_io Phoebe_storage
