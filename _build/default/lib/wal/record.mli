(** WAL record format.

    Redo-only records (UNDO information lives in memory, §6.2): logical
    after-images of tuple operations plus commit records. Every record
    carries its writer slot, LSN (strictly increasing per WAL writer) and
    GSN (the Lamport-style global sequence number used to order
    cross-page dependencies at recovery, §8). Records are length-prefixed
    and CRC-protected. *)

type op =
  | Insert of { table : int; rid : int; row : Phoebe_storage.Value.t array }
  | Update of { table : int; rid : int; cols : (int * Phoebe_storage.Value.t) array }
  | Delete of { table : int; rid : int }
  | Commit of { xid : int; cts : int }
  | Abort of { xid : int }
      (** written at rollback so recovery does not attribute the
          transaction's earlier records to the slot's next commit *)

type t = { slot : int; lsn : int; gsn : int; op : op }

val encode : Buffer.t -> t -> unit

val decode : Bytes.t -> int -> t * int
(** @raise Failure on CRC mismatch or truncation. *)

val decode_all : Bytes.t -> slot:int -> t list
(** Decode a whole WAL file; a trailing torn record (simulated crash cut)
    is tolerated and ignored. *)

val size_bytes : t -> int
(** Encoded size, for WAL-volume accounting. *)

val is_commit : t -> bool
val pp : Format.formatter -> t -> unit
