module Walstore = Phoebe_io.Walstore

type apply = {
  insert : table:int -> rid:int -> Phoebe_storage.Value.t array -> unit;
  update : table:int -> rid:int -> (int * Phoebe_storage.Value.t) array -> unit;
  delete : table:int -> rid:int -> unit;
}

type report = {
  files_read : int;
  records_read : int;
  committed_txns : int;
  ops_replayed : int;
  ops_dropped : int;
}

let read_all store =
  List.concat_map
    (fun file -> Record.decode_all (Walstore.contents store ~file) ~slot:file)
    (Walstore.files store)

(* A transaction's data records carry no xid (they are ordered within
   their slot's file); its commit record in the same file covers every
   earlier record of that slot... but a slot runs many transactions, so
   we attribute a slot's data records to the next commit record *in that
   slot's LSN order* — exactly how the slot writer interleaves them:
   [ops of txn1][commit txn1][ops of txn2][commit txn2]... A trailing run
   of data records without a commit belongs to an uncommitted
   transaction and is dropped. *)
let replay ?(after = fun _ -> -1) store apply =
  let files = Walstore.files store in
  let records_read = ref 0 in
  let committed = ref 0 in
  let replayable = ref [] in
  let dropped = ref 0 in
  List.iter
    (fun file ->
      let records = Record.decode_all (Walstore.contents store ~file) ~slot:file in
      let records =
        List.filter (fun (r : Record.t) -> r.Record.lsn > after r.Record.slot) records
      in
      records_read := !records_read + List.length records;
      (* records are already in LSN order within the file *)
      let pending = ref [] in
      List.iter
        (fun (r : Record.t) ->
          match r.Record.op with
          | Record.Commit _ ->
            incr committed;
            replayable := List.rev_append !pending !replayable;
            pending := []
          | Record.Abort _ ->
            dropped := !dropped + List.length !pending;
            pending := []
          | _ -> pending := r :: !pending)
        records;
      dropped := !dropped + List.length !pending)
    files;
  let ordered =
    List.sort
      (fun (a : Record.t) (b : Record.t) ->
        if a.gsn <> b.gsn then compare a.gsn b.gsn
        else if a.slot <> b.slot then compare a.slot b.slot
        else compare a.lsn b.lsn)
      !replayable
  in
  List.iter
    (fun (r : Record.t) ->
      match r.Record.op with
      | Record.Insert { table; rid; row } -> apply.insert ~table ~rid row
      | Record.Update { table; rid; cols } -> apply.update ~table ~rid cols
      | Record.Delete { table; rid } -> apply.delete ~table ~rid
      | Record.Commit _ | Record.Abort _ -> ())
    ordered;
  {
    files_read = List.length files;
    records_read = !records_read;
    committed_txns = !committed;
    ops_replayed = List.length ordered;
    ops_dropped = !dropped;
  }

let committed_transactions store =
  let commits =
    List.filter_map
      (fun (r : Record.t) ->
        match r.Record.op with Record.Commit { xid; cts } -> Some (xid, cts) | _ -> None)
      (read_all store)
  in
  List.sort (fun (_, a) (_, b) -> compare a b) commits
