(** Append-only WAL files on a simulated device.

    Each task slot owns one WAL file (paper §8, task-slot-specific WAL
    writers); a flush appends a byte batch and reports durability when
    the device write completes. Contents are retained for recovery. *)

type t

val create : Device.t -> t

val append : t -> file:int -> Bytes.t -> on_durable:(unit -> unit) -> unit
(** Queue [bytes] for file [file]; [on_durable] fires when the device
    write completes. Appends to the same file become durable in order. *)

val contents : t -> file:int -> Bytes.t
(** Everything durably appended (plus in-flight appends — the simulated
    device never tears a write) to [file]; empty if never written. *)

val files : t -> int list
val total_appended : t -> int
val device : t -> Device.t
val reset : t -> unit
