type t = {
  dev : Device.t;
  file_bufs : (int, Buffer.t) Hashtbl.t;
  mutable appended : int;
}

let create dev = { dev; file_bufs = Hashtbl.create 64; appended = 0 }

let buffer_for t file =
  match Hashtbl.find_opt t.file_bufs file with
  | Some b -> b
  | None ->
    let b = Buffer.create 4096 in
    Hashtbl.add t.file_bufs file b;
    b

let append t ~file bytes ~on_durable =
  let buf = buffer_for t file in
  Buffer.add_bytes buf bytes;
  t.appended <- t.appended + Bytes.length bytes;
  Device.submit t.dev Device.Write ~bytes:(Bytes.length bytes) ~on_complete:on_durable

let contents t ~file =
  match Hashtbl.find_opt t.file_bufs file with
  | Some b -> Buffer.to_bytes b
  | None -> Bytes.empty

let files t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.file_bufs [] |> List.sort compare

let total_appended t = t.appended
let device t = t.dev

let reset t =
  Hashtbl.reset t.file_bufs;
  t.appended <- 0
