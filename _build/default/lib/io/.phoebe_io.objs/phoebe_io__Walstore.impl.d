lib/io/walstore.ml: Buffer Bytes Device Hashtbl List
