lib/io/device.ml: Array Float List Phoebe_runtime Phoebe_sim Phoebe_util
