lib/io/device.mli: Phoebe_sim
