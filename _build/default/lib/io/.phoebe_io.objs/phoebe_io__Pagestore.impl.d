lib/io/pagestore.ml: Bytes Device Hashtbl
