lib/io/pagestore.mli: Bytes Device
