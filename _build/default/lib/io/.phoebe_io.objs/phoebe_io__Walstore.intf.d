lib/io/walstore.mli: Bytes Device
