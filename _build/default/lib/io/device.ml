module Engine = Phoebe_sim.Engine
module Stats = Phoebe_util.Stats

type kind = Read | Write

type config = {
  channels : int;
  read_mb_s : float;
  write_mb_s : float;
  iops : float;
  latency_us : float;
}

let pm9a3 =
  { channels = 8; read_mb_s = 6500.0; write_mb_s = 1900.0; iops = 130_000.0; latency_us = 90.0 }

type t = {
  engine : Engine.t;
  dname : string;
  cfg : config;
  channel_free : int array;  (** next-free virtual time per channel *)
  mutable read_bytes : int;
  mutable write_bytes : int;
  mutable read_ops : int;
  mutable write_ops : int;
  read_series : Stats.Series.t;
  write_series : Stats.Series.t;
  mutable busy_ns : int;
  created_at : int;
}

let create engine ~name cfg =
  {
    engine;
    dname = name;
    cfg;
    channel_free = Array.make cfg.channels 0;
    read_bytes = 0;
    write_bytes = 0;
    read_ops = 0;
    write_ops = 0;
    read_series = Stats.Series.create ~bucket_width:100_000_000;
    write_series = Stats.Series.create ~bucket_width:100_000_000;
    busy_ns = 0;
    created_at = Engine.now engine;
  }

let name t = t.dname

let bandwidth t = function Read -> t.cfg.read_mb_s | Write -> t.cfg.write_mb_s

let service_ns t kind bytes =
  let bw_ns = float_of_int bytes /. (bandwidth t kind *. 1e6) *. 1e9 in
  let iops_ns = 1e9 /. t.cfg.iops in
  int_of_float (Float.max bw_ns iops_ns)

(* Pick the channel that frees earliest; models NVMe queue parallelism. *)
let pick_channel t =
  let best = ref 0 in
  for i = 1 to Array.length t.channel_free - 1 do
    if t.channel_free.(i) < t.channel_free.(!best) then best := i
  done;
  !best

let account t kind bytes finish =
  (match kind with
  | Read ->
    t.read_bytes <- t.read_bytes + bytes;
    t.read_ops <- t.read_ops + 1;
    Stats.Series.add t.read_series ~time:finish (float_of_int bytes)
  | Write ->
    t.write_bytes <- t.write_bytes + bytes;
    t.write_ops <- t.write_ops + 1;
    Stats.Series.add t.write_series ~time:finish (float_of_int bytes))

let submit t kind ~bytes ~on_complete =
  let now = Engine.now t.engine in
  let ch = pick_channel t in
  let start = if t.channel_free.(ch) > now then t.channel_free.(ch) else now in
  let service = service_ns t kind bytes in
  let finish = start + service in
  t.channel_free.(ch) <- finish;
  t.busy_ns <- t.busy_ns + service;
  account t kind bytes finish;
  let complete_at = finish + int_of_float (t.cfg.latency_us *. 1000.0) in
  Engine.schedule_at t.engine ~time:complete_at on_complete

let blocking t kind ~bytes =
  Phoebe_runtime.Scheduler.io_wait (fun resume -> submit t kind ~bytes ~on_complete:resume)

let total_bytes t = function Read -> t.read_bytes | Write -> t.write_bytes
let total_ops t = function Read -> t.read_ops | Write -> t.write_ops

let throughput_series t kind =
  let series = match kind with Read -> t.read_series | Write -> t.write_series in
  List.map (fun (s, bytes_per_s) -> (s, bytes_per_s /. 1e6)) (Stats.Series.rate_per_second series)

let busy_fraction t =
  let elapsed = Engine.now t.engine - t.created_at in
  if elapsed <= 0 then 0.0
  else
    Float.min 1.0
      (float_of_int t.busy_ns /. (float_of_int elapsed *. float_of_int t.cfg.channels))
