lib/txn/txnmgr.mli: Clock Phoebe_runtime Phoebe_sim Phoebe_wal Tablelock Twin Undo
