lib/txn/txnmgr.ml: Array Clock Hashtbl List Phoebe_runtime Phoebe_sim Phoebe_wal Printf Queue Tablelock Twin Undo
