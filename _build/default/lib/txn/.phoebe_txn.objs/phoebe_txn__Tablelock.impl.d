lib/txn/tablelock.ml: Hashtbl Phoebe_runtime
