lib/txn/clock.mli:
