lib/txn/mvcc.mli: Phoebe_storage Undo
