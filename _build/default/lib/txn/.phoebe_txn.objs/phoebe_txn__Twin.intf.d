lib/txn/twin.mli: Phoebe_runtime Undo
