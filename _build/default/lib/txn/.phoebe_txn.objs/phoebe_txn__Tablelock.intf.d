lib/txn/tablelock.mli: Phoebe_runtime
