lib/txn/twin.ml: Hashtbl List Phoebe_runtime Undo
