lib/txn/undo.ml: Array Clock Phoebe_storage
