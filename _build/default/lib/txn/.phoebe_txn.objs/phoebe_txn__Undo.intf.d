lib/txn/undo.mli: Phoebe_storage
