lib/txn/mvcc.ml: Array Clock Phoebe_runtime Phoebe_sim Phoebe_storage Undo
