lib/txn/clock.ml:
