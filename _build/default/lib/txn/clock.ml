type t = { mutable ts : int }

let create () = { ts = 0 }

let next t =
  t.ts <- t.ts + 1;
  t.ts

let current t = t.ts
let advance_to t ts = if ts > t.ts then t.ts <- ts

let xid_marker = 1 lsl 61

(* One bit below the marker is reserved, mirroring the paper's layout. *)
let xid_of_start_ts ts =
  assert (ts >= 0 && ts < 1 lsl 59);
  xid_marker lor (ts lsl 1)

let is_xid v = v land xid_marker <> 0
let start_ts_of_xid v = (v land lnot xid_marker) lsr 1
