(** In-memory UNDO logs (paper §6.2).

    Each UNDO log is a before-image delta: for updates, the prior values
    of only the changed columns; for deletes, the full prior tuple (the
    deleted-tuple GC needs it to strip index entries); for inserts, the
    fact that the row did not exist. Logs carry the two timestamps of the
    paper's design: [sts] (when the before image was committed — the
    [ets] of the previous log, or 0 if reclaimed/none) and [ets] (the
    writer's XID while active, overwritten with its commit timestamp).

    Logs of one transaction are linked through [next_in_txn] so commit
    can stamp all [ets] fields in one scan; logs of one tuple are linked
    newest-to-oldest through [next], forming the version chain. *)

type kind =
  | Created
  | Updated of (int * Phoebe_storage.Value.t) array  (** (column, before image) *)
  | Deleted of Phoebe_storage.Value.t array  (** full before image *)

type t = {
  table_id : int;
  rid : int;
  kind : kind;
  sts : int;
  mutable ets : int;
  slot : int;
  mutable next : t option;  (** version chain, newest first *)
  mutable next_in_txn : t option;
  mutable reclaimed : bool;
}

val make :
  table_id:int -> rid:int -> kind:kind -> sts:int -> xid:int -> slot:int -> prev:t option -> t
(** New chain head: [ets] starts as [xid], [next] points at [prev]. *)

val is_committed : t -> bool
(** True once [ets] holds a commit timestamp rather than an XID. *)

val iter_txn : t option -> (t -> unit) -> unit
(** Iterate a transaction's logs from newest to oldest. *)

val txn_length : t option -> int

val size_bytes : t -> int
(** Rough memory footprint, for UNDO-space accounting (§7.3). *)
