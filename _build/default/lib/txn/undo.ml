module Value = Phoebe_storage.Value

type kind = Created | Updated of (int * Value.t) array | Deleted of Value.t array

type t = {
  table_id : int;
  rid : int;
  kind : kind;
  sts : int;
  mutable ets : int;
  slot : int;
  mutable next : t option;
  mutable next_in_txn : t option;
  mutable reclaimed : bool;
}

let make ~table_id ~rid ~kind ~sts ~xid ~slot ~prev =
  { table_id; rid; kind; sts; ets = xid; slot; next = prev; next_in_txn = None; reclaimed = false }

let is_committed t = not (Clock.is_xid t.ets)

let iter_txn head f =
  let rec go = function
    | None -> ()
    | Some u ->
      f u;
      go u.next_in_txn
  in
  go head

let txn_length head =
  let n = ref 0 in
  iter_txn head (fun _ -> incr n);
  !n

let size_bytes t =
  let delta =
    match t.kind with
    | Created -> 0
    | Updated cols -> Array.fold_left (fun acc (_, v) -> acc + Value.size_bytes v) 0 cols
    | Deleted row -> Array.fold_left (fun acc v -> acc + Value.size_bytes v) 0 row
  in
  64 + delta
