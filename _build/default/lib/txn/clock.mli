(** The global logical clock and XID encoding (paper §6.1).

    A single monotonically increasing counter issues both snapshot
    timestamps and commit timestamps, making snapshot acquisition O(1) —
    the paper's replacement for PostgreSQL's active-transaction scan.

    XIDs embed the transaction's start timestamp with a high marker bit,
    so an uncommitted [ets] field (holding an XID) compares greater than
    every committed timestamp — Algorithm 1's comparisons need no case
    split. The paper uses bit 63 of a 64-bit word with 62 timestamp bits;
    OCaml's native 63-bit integers shift that scheme down one bit (marker
    at bit 61, 61 timestamp bits), which changes no behaviour. *)

type t

val create : unit -> t

val next : t -> int
(** Allocate the next timestamp (used for commit timestamps). *)

val current : t -> int
(** Read the latest issued timestamp — an O(1) snapshot. *)

val advance_to : t -> int -> unit
(** Move the clock forward to at least [ts] (checkpoint restore). *)

(** {1 XIDs} *)

val xid_marker : int

val xid_of_start_ts : int -> int
val is_xid : int -> bool
val start_ts_of_xid : int -> int
