module Db = Phoebe_core.Db
module Table = Phoebe_core.Table
module Value = Phoebe_storage.Value
module Txnmgr = Phoebe_txn.Txnmgr
module Scheduler = Phoebe_runtime.Scheduler
module Engine = Phoebe_sim.Engine
module Prng = Phoebe_util.Prng
module Zipf = Phoebe_util.Zipf
module Stats = Phoebe_util.Stats

type key_dist = Uniform | Zipfian of float

type op_mix = { read : float; update : float; insert : float; scan : float }

let read_mostly = { read = 0.95; update = 0.05; insert = 0.0; scan = 0.0 }
let update_heavy = { read = 0.5; update = 0.5; insert = 0.0; scan = 0.0 }
let mixed = { read = 0.7; update = 0.2; insert = 0.05; scan = 0.05 }

type t = {
  wdb : Db.t;
  wtable : Table.t;
  mutable n_keys : int;
  value_bytes : int;
}

let table t = t.wtable

let setup db ?(table_name = "kv") ~rows ~value_bytes ~seed () =
  let rng = Prng.create ~seed in
  let tbl =
    Db.create_table db ~name:table_name ~schema:[ ("k", Value.T_int); ("payload", Value.T_str) ]
  in
  Db.create_index db tbl ~name:(table_name ^ "_pk") ~cols:[ "k" ] ~unique:true;
  let chunk = 1000 in
  let k = ref 0 in
  while !k < rows do
    Db.with_txn db (fun txn ->
        for _ = 1 to min chunk (rows - !k) do
          incr k;
          ignore
            (Table.insert tbl txn
               [| Value.Int !k; Value.Str (Prng.alpha_string rng ~min_len:value_bytes ~max_len:value_bytes) |])
        done)
  done;
  ignore (Db.gc db);
  { wdb = db; wtable = tbl; n_keys = rows; value_bytes }

type results = {
  committed : int;
  aborted : int;
  duration_s : float;
  txn_per_s : float;
  p99_us : float;
}

let run t ?(dist = Zipfian 0.99) ?(mix = mixed) ?(ops_per_txn = 4) ~concurrency ~duration_ns ~seed
    () =
  let db = t.wdb in
  let eng = Db.engine db in
  let sched = Db.scheduler db in
  let zipf = match dist with Zipfian theta -> Some (Zipf.create ~theta ~n:t.n_keys ()) | Uniform -> None in
  let pick_key rng =
    match zipf with Some z -> 1 + Zipf.sample z rng | None -> 1 + Prng.int rng t.n_keys
  in
  let index = Table.name t.wtable ^ "_pk" in
  let start = Engine.now eng in
  let deadline = start + duration_ns in
  let committed = ref 0 in
  let latency = Stats.Histogram.create () in
  let one_op t txn rng =
    let r = Prng.float rng 1.0 in
    let key = pick_key rng in
    if r < mix.read then ignore (Table.index_lookup_first t.wtable txn ~index ~key:[ Value.Int key ])
    else if r < mix.read +. mix.update then begin
      match Table.index_lookup_first t.wtable txn ~index ~key:[ Value.Int key ] with
      | Some (rid, _) ->
        ignore
          (Table.update t.wtable txn ~rid
             [ ("payload", Value.Str (Prng.alpha_string rng ~min_len:t.value_bytes ~max_len:t.value_bytes)) ])
      | None -> ()
    end
    else if r < mix.read +. mix.update +. mix.insert then begin
      t.n_keys <- t.n_keys + 1;
      ignore
        (Table.insert t.wtable txn
           [|
             Value.Int t.n_keys;
             Value.Str (Prng.alpha_string rng ~min_len:t.value_bytes ~max_len:t.value_bytes);
           |])
    end
    else begin
      let n = ref 0 in
      Table.index_prefix t.wtable txn ~index ~prefix:[] (fun _ _ ->
          incr n;
          !n < 10)
    end
  in
  let rec user rng () =
    if Engine.now eng < deadline then begin
      let began = Engine.now eng in
      Scheduler.submit sched (fun () ->
          (try
             Db.with_txn db (fun txn ->
                 for _ = 1 to ops_per_txn do
                   one_op t txn rng
                 done);
             incr committed
           with Txnmgr.Abort _ -> ());
          Db.after_commit_housekeeping db;
          Stats.Histogram.add latency (Engine.now eng - began);
          user rng ())
    end
  in
  let rng0 = Prng.create ~seed in
  for _ = 1 to concurrency do
    user (Prng.split rng0) ()
  done;
  Scheduler.run_until_quiescent sched;
  let duration_s = float_of_int (Engine.now eng - start) /. 1e9 in
  {
    committed = !committed;
    aborted = Db.aborted db;
    duration_s;
    txn_per_s = (if duration_s > 0.0 then float_of_int !committed /. duration_s else 0.0);
    p99_us = Stats.Histogram.percentile latency 0.99 /. 1e3;
  }
