lib/workload/workload.mli: Phoebe_core
