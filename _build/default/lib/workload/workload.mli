(** Generic key-value workloads (YCSB-flavoured) over a PhoebeDB table:
    used by the examples and the ablation benchmarks, where TPC-C's five
    fixed procedures are too coarse a knob. *)

type key_dist = Uniform | Zipfian of float  (** skew theta *)

type op_mix = {
  read : float;
  update : float;
  insert : float;
  scan : float;  (** short range scans (10 rows via the secondary index) *)
}

val read_mostly : op_mix  (** 95 / 5 / 0 / 0 *)

val update_heavy : op_mix  (** 50 / 50 / 0 / 0 *)

val mixed : op_mix  (** 70 / 20 / 5 / 5 *)

type t

val setup :
  Phoebe_core.Db.t -> ?table_name:string -> rows:int -> value_bytes:int -> seed:int -> unit -> t
(** Create and load a two-column (key, payload) table with a unique
    index on the key. *)

val table : t -> Phoebe_core.Table.t

type results = {
  committed : int;
  aborted : int;
  duration_s : float;
  txn_per_s : float;
  p99_us : float;
}

val run :
  t ->
  ?dist:key_dist ->
  ?mix:op_mix ->
  ?ops_per_txn:int ->
  concurrency:int ->
  duration_ns:int ->
  seed:int ->
  unit ->
  results
(** Drive the mix with [concurrency] outstanding transactions for a
    virtual-time window (same driver shape as the TPC-C harness). *)
