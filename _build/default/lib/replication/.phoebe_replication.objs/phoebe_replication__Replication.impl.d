lib/replication/replication.ml: Bytes Fmt Hashtbl List Option Phoebe_core Phoebe_io Phoebe_sim Phoebe_wal
