lib/replication/replication.mli: Phoebe_core
