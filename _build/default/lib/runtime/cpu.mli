(** The simulated CPU: core counts, frequency, and SMT behaviour.

    Mirrors the paper's testbed (2× Xeon Gold 5320: 52 physical cores,
    104 hardware threads, 2.2 GHz). Workers are bound to cores; once the
    worker count exceeds the physical core count the extra workers share
    physical cores with an SMT efficiency factor, which produces the
    Figure 8 knee at 52 workers. *)

type t = {
  physical_cores : int;
  virtual_cores : int;
  ghz : float;
  ipc : float;  (** average instructions per cycle for OLTP code *)
  smt_efficiency : float;  (** per-sibling speed when two workers share a core *)
}

val default : t
(** 52 physical / 104 virtual, 2.2 GHz, IPC 1.5, SMT factor 0.75. *)

val worker_speed : t -> n_workers:int -> worker:int -> float
(** Relative speed of [worker] when [n_workers] are bound round-robin:
    1.0 on a dedicated physical core, [smt_efficiency] when sharing. *)

val ns_of_instructions : t -> speed:float -> int -> int
(** Convert an instruction count to virtual nanoseconds at [speed]. *)
