type t = {
  physical_cores : int;
  virtual_cores : int;
  ghz : float;
  ipc : float;
  smt_efficiency : float;
}

let default =
  { physical_cores = 52; virtual_cores = 104; ghz = 2.2; ipc = 1.5; smt_efficiency = 0.75 }

let worker_speed t ~n_workers ~worker =
  if n_workers <= t.physical_cores then 1.0
  else
    (* Workers [0, physical) sit on distinct physical cores; workers beyond
       that are SMT siblings of workers [0, n_workers - physical). Both
       members of a shared core run at the SMT efficiency factor. *)
    let shared = n_workers - t.physical_cores in
    if worker >= t.physical_cores || worker < shared then t.smt_efficiency else 1.0

let ns_of_instructions t ~speed n =
  if n <= 0 then 0
  else
    let instr_per_ns = t.ghz *. t.ipc *. speed in
    let ns = float_of_int n /. instr_per_ns in
    let r = int_of_float (Float.ceil ns) in
    if r < 1 then 1 else r
