lib/runtime/scheduler.mli: Cpu Phoebe_sim
