lib/runtime/cpu.ml: Float
