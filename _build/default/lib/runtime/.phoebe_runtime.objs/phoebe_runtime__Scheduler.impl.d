lib/runtime/scheduler.ml: Array Cpu Effect Fmt List Phoebe_sim Printexc Printf Queue
