lib/runtime/cpu.mli:
