lib/tpcc/tpcc.mli: Phoebe_core Phoebe_util
