lib/tpcc/tpcc.ml: Array Fmt Hashtbl List Phoebe_core Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn Phoebe_util Printf String
