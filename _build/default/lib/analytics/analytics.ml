module Db = Phoebe_core.Db
module Table = Phoebe_core.Table
module Table_tree = Phoebe_btree.Table_tree
module Value = Phoebe_storage.Value
module Pax = Phoebe_storage.Pax
module Frozen = Phoebe_storage.Frozen
module Bufmgr = Phoebe_storage.Bufmgr
module Txnmgr = Phoebe_txn.Txnmgr
module Twin = Phoebe_txn.Twin
module Scheduler = Phoebe_runtime.Scheduler
module Component = Phoebe_sim.Component

(* Visibility fast path: a tuple without a live version chain is either
   globally visible or globally deleted (its UNDO was reclaimed only
   once older than every active snapshot). Tuples WITH a chain fall back
   to the row-wise Algorithm-1 read. *)
let fold_column db table txn ~col ~init ~f =
  let txnmgr = Db.txnmgr db in
  let tree = Table.tree table in
  let schema = Table.schema table in
  let cidx = Value.Schema.column_index schema col in
  let acc = ref init in
  let slow_path rid =
    match Table.get table txn ~rid with
    | Some row -> acc := f !acc row.(cidx)
    | None -> ()
  in
  (* frozen tier: one decompression per block, per-rid twin checks only
     for rows someone is actively versioning (synthetic -rid pages) *)
  Table_tree.iter_blocks tree (fun block ->
      Scheduler.charge Component.Effective 2000;
      Frozen.fold_col block ~col:cidx ~init:() ~f:(fun () ~rid ~deleted v ->
          match Txnmgr.twin_of_page txnmgr ~page_id:(Table.frozen_chain_key table ~rid) with
          | Some twin when Twin.find twin ~rid <> None -> slow_path rid
          | _ -> if not deleted then acc := f !acc v));
  (* page tiers: the PAX column minipage is contiguous; a leaf whose page
     has no twin table is entirely fast-path *)
  Table_tree.iter_leaf_pages tree (fun frame ->
      Scheduler.charge Component.Effective 1000;
      let page = Bufmgr.payload frame in
      let twin = Txnmgr.twin_of_page txnmgr ~page_id:(Bufmgr.page_id frame) in
      for slot = 0 to Pax.count page - 1 do
        let rid = Pax.row_id_at page ~slot in
        let versioned =
          match twin with Some tw -> Twin.find tw ~rid <> None | None -> false
        in
        if versioned then slow_path rid
        else if not (Pax.is_deleted page ~slot) then acc := f !acc (Pax.get_col page ~slot ~col:cidx)
      done);
  !acc

type numeric_agg = { count : int; sum : float; min : float; max : float }

let aggregate_column db table txn ~col =
  let step agg v =
    match v with
    | Value.Int _ | Value.Float _ ->
      let x = match v with Value.Int i -> float_of_int i | Value.Float f -> f | _ -> 0.0 in
      {
        count = agg.count + 1;
        sum = agg.sum +. x;
        min = (if agg.count = 0 then x else Float.min agg.min x);
        max = (if agg.count = 0 then x else Float.max agg.max x);
      }
    | _ -> agg
  in
  fold_column db table txn ~col ~init:{ count = 0; sum = 0.0; min = Float.nan; max = Float.nan }
    ~f:step

let group_count db table txn ~col =
  let groups : (Value.t, int) Hashtbl.t = Hashtbl.create 64 in
  ignore
    (fold_column db table txn ~col ~init:() ~f:(fun () v ->
         Hashtbl.replace groups v (1 + Option.value ~default:0 (Hashtbl.find_opt groups v))));
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> Value.compare a b)

let tier_rows db table ~frozen =
  ignore db;
  let tree = Table.tree table in
  if frozen then begin
    let n = ref 0 in
    Table_tree.iter_blocks tree (fun b -> n := !n + Frozen.live_count b);
    !n
  end
  else begin
    let n = ref 0 in
    Table_tree.iter_leaf_pages tree (fun frame -> n := !n + Pax.live_count (Bufmgr.payload frame));
    !n
  end
