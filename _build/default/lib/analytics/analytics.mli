(** Columnar analytical operators — the seed of the paper's HTAP future
    work (§3 "Future HTAP Potential", §10 item 3), exploiting exactly
    the storage decisions the paper makes for it: PAX pages keep each
    attribute contiguous, and frozen blocks store compressed columns.

    Operators stream one column per tier: frozen blocks decompress only
    the requested column (one decode per block, not per row); hot/cold
    PAX leaves read the column minipage directly. MVCC correctness is
    preserved without row materialisation for the common case: a tuple
    with no version-chain entry is, by the GC watermark invariant,
    globally visible — only tuples with live chains take the row-wise
    visibility fallback. Scans never warm pages (§5.2). *)

type numeric_agg = {
  count : int;  (** non-null, visible values *)
  sum : float;
  min : float;  (** [nan] when count = 0 *)
  max : float;
}

val aggregate_column :
  Phoebe_core.Db.t -> Phoebe_core.Table.t -> Phoebe_core.Table.txn -> col:string -> numeric_agg
(** Count/sum/min/max of a numeric column across all three tiers. *)

val group_count :
  Phoebe_core.Db.t -> Phoebe_core.Table.t -> Phoebe_core.Table.txn -> col:string ->
  (Phoebe_storage.Value.t * int) list
(** Value histogram of a column (dictionary-friendly on frozen data),
    sorted by value. *)

val tier_rows : Phoebe_core.Db.t -> Phoebe_core.Table.t -> frozen:bool -> int
(** Visible-row count served by the frozen tier ([frozen:true]) or the
    page tiers — used by tests and the HTAP bench to report coverage. *)
