lib/analytics/analytics.mli: Phoebe_core Phoebe_storage
