lib/analytics/analytics.ml: Array Float Hashtbl List Option Phoebe_btree Phoebe_core Phoebe_runtime Phoebe_sim Phoebe_storage Phoebe_txn
