lib/baseline/baseline.mli: Phoebe_core Phoebe_io Phoebe_sim
