lib/baseline/baseline.ml: Phoebe_core Phoebe_io Phoebe_runtime Phoebe_sim Phoebe_txn Phoebe_wal
