(** Comparison kernels for Exp 8 and Exp 9, built as configurations of
    the same relational substrate so the throughput gaps emerge from the
    architectural mechanisms the paper blames rather than hard-coded
    constants.

    {b Pg_like} (PostgreSQL-17-style): snapshot acquisition scans the
    active-transaction array behind a proc-array latch; locks live in a
    global lock table behind one latch; the WAL has a single serialized
    writer with flush-on-commit; execution uses the thread model; there
    is no pointer swizzling (every page access pays a global hash-table
    probe) and per-operation instruction counts carry the interpreter
    overhead of a general-purpose executor.

    {b Odb_like} (the paper's commercial "O-DB"): an optimized
    buffer-pool-centric engine that remains I/O-bound — larger
    per-page-access costs and a storage configuration whose bandwidth
    ceiling caps CPU utilisation near 77%. *)

val pg_like : ?workers:int -> ?buffer_bytes:int -> unit -> Phoebe_core.Config.t
(** Defaults: 100 worker threads (thread model), 256 MB buffer. *)

val odb_like : ?workers:int -> ?buffer_bytes:int -> unit -> Phoebe_core.Config.t

val pg_cost : Phoebe_sim.Cost.t
(** The Pg_like instruction-cost table: interpreter and layering
    overheads applied on top of {!Phoebe_sim.Cost.default} (see
    EXPERIMENTS.md for the calibration rationale). *)

val odb_cost : Phoebe_sim.Cost.t

val odb_device : Phoebe_io.Device.config
