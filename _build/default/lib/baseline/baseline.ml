module Config = Phoebe_core.Config
module Cost = Phoebe_sim.Cost
module Scheduler = Phoebe_runtime.Scheduler
module Txnmgr = Phoebe_txn.Txnmgr
module Wal = Phoebe_wal.Wal
module Device = Phoebe_io.Device

(* PostgreSQL-style per-operation instruction counts: the same logical
   operations pay general-purpose-executor overheads — heap tuple
   deforming, buffer pins through a global hash table, lock-manager
   hash probes, executor node dispatch. Factors follow the
   "OLTP through the looking glass" style breakdowns (paper [39]):
   roughly 3-4x on the hot paths. *)
let pg_cost =
  {
    Cost.default with
    Cost.btree_search_per_level = 1400;
    btree_leaf_op = 5250;
    latch_acquire = 450;
    pax_read = 4750;  (* heap_deform_tuple etc. *)
    pax_write_per_col = 1625;
    buffer_hit = 1300;  (* shared-buffers hash probe + pin/unpin *)
    buffer_miss = 13000;
    undo_create = 2250;  (* heap versioning: whole-row copies *)
    undo_apply = 1750;
    visibility_check = 1050;  (* HeapTupleSatisfiesMVCC with clog lookups *)
    snapshot_acquire = 1500;
    snapshot_scan_per_txn = 300;
    commit_stamp_per_undo = 225;
    tuple_lock = 1500;
    txnid_lock = 2250;
    global_lock_table = 4000;
    wal_record_base = 1200;
    wal_commit = 1750;
    txn_begin = 3500;
    txn_finalize = 4000;
    gc_per_undo = 1000;  (* vacuum-style cleanup *)
    app_logic_per_stmt = 15000;  (* SQL parse/plan/executor per statement *)
  }

let pg_like ?(workers = 100) ?(buffer_bytes = 256 * 1024 * 1024) () =
  {
    Config.default with
    Config.n_workers = workers;
    slots_per_worker = 1;  (* one transaction per backend process *)
    model = Scheduler.Thread;
    cost = pg_cost;
    buffer_bytes;
    snapshot_mode = Txnmgr.Scan_active;
    lock_style = Config.Global_serialized { lock_hold_ns = 700; snapshot_hold_ns = 1400 };
    wal = { Wal.default_config with Wal.rfa = false; single_writer = true };
  }

(* The commercial engine: a well-optimized buffer-pool architecture,
   noticeably leaner than PostgreSQL per operation but still paying the
   central-buffer-pool and heavyweight-latching taxes, and — the point
   of Exp 9 — bound by its storage subsystem's bandwidth envelope. *)
let odb_cost =
  {
    Cost.default with
    Cost.btree_search_per_level = 700;
    btree_leaf_op = 2500;
    pax_read = 2250;
    buffer_hit = 650;
    buffer_miss = 9500;
    buffer_evict = 8000;
    tuple_lock = 800;
    txnid_lock = 1300;
    global_lock_table = 2250;
    txn_begin = 1750;
    txn_finalize = 2000;
    app_logic_per_stmt = 2750;
  }

(* Five drives behind a RAID-style controller, but an older-generation
   stack whose random path tops out well below the PM9A3 pair PhoebeDB
   uses; the controller serialises at ~220k IOPS. *)
let odb_device =
  { Device.channels = 10; read_mb_s = 2400.0; write_mb_s = 1500.0; iops = 220_000.0; latency_us = 80.0 }

let odb_like ?(workers = 100) ?(buffer_bytes = 128 * 1024 * 1024) () =
  {
    Config.default with
    Config.n_workers = workers;
    slots_per_worker = 1;
    model = Scheduler.Thread;
    cost = odb_cost;
    buffer_bytes;
    snapshot_mode = Txnmgr.Scan_active;
    lock_style = Config.Global_serialized { lock_hold_ns = 100; snapshot_hold_ns = 150 };
    wal = { Wal.default_config with Wal.rfa = false; single_writer = true };
    data_device = odb_device;
    wal_device = odb_device;
  }
