lib/storage/value.ml: Array Buffer Bytes Char Fmt Format Hashtbl Int64 List Phoebe_util Printf Stdlib String
