lib/storage/pax.mli: Bytes Value
