lib/storage/value.mli: Buffer Bytes Format
