lib/storage/bufmgr.mli: Bytes Latch Phoebe_io Phoebe_sim
