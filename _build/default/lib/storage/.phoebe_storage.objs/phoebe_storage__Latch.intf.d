lib/storage/latch.mli:
