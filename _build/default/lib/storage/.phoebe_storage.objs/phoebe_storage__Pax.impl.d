lib/storage/pax.ml: Array Buffer Bytes Char Fmt List Phoebe_util String Value
