lib/storage/frozen.mli: Bytes Pax Value
