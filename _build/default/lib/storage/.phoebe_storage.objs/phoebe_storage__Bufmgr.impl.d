lib/storage/bufmgr.ml: Array Bytes Hashtbl Latch Phoebe_io Phoebe_runtime Phoebe_sim Queue
