lib/storage/latch.ml: Phoebe_runtime Phoebe_sim
