lib/storage/frozen.ml: Array Buffer Bytes Char Fmt Hashtbl List Pax Phoebe_util String Value
