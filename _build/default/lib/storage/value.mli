(** Typed column values and relation schemas. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type col_type = T_int | T_float | T_str | T_bool

val type_of : t -> col_type option
(** [None] for [Null]. *)

val compare : t -> t -> int
(** Total order with [Null] first; cross-type comparisons follow the
    constructor order (only meaningful inside one column in practice). *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val size_bytes : t -> int
(** Storage footprint estimate used for page-budget accounting. *)

val encode : Buffer.t -> t -> unit
val decode : Bytes.t -> int -> t * int

val encode_key : Buffer.t -> t -> unit
(** Order-preserving (memcomparable) encoding: byte-wise comparison of two
    encoded keys matches {!compare} per component. Used for secondary
    index keys. Does not support [Float] NaN. *)

(** {1 Schemas} *)

module Schema : sig
  type value = t

  type column = { name : string; ctype : col_type }

  type t

  val make : (string * col_type) list -> t
  val columns : t -> column array
  val arity : t -> int

  val column_index : t -> string -> int
  (** @raise Not_found for an unknown column name. *)

  val column_type : t -> int -> col_type

  val check_row : t -> value array -> bool
  (** Arity matches and every non-null value matches its column type. *)
end
