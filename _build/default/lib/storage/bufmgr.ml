module Scheduler = Phoebe_runtime.Scheduler
module Component = Phoebe_sim.Component
module Cost = Phoebe_sim.Cost
module Engine = Phoebe_sim.Engine
module Pagestore = Phoebe_io.Pagestore

type state = Hot | Cooling

type 'p codec = { encode : 'p -> Bytes.t; decode : Bytes.t -> 'p; size : 'p -> int }

type 'p frame = {
  fpage_id : int;
  fpartition : int;
  flatch : Latch.t;
  mutable fpayload : 'p option;
  mutable fstate : state;
  mutable fdirty : bool;
  mutable fpinned : int;
  mutable fsize : int;
  mutable faccess_count : int;
  mutable flast_access : int;
  mutable fgsn : int;
  mutable fwriter_slot : int;
  mutable fparent : 'p swip option;
}

and 'p ref_state = Swizzled of 'p frame | Unswizzled of int

and 'p swip = { mutable ptr : 'p ref_state }

type 'p partition = {
  frames : (int, 'p frame) Hashtbl.t;  (** resident frames by page id *)
  cooling : 'p frame Queue.t;
  mutable used_bytes : int;
  mutable budget : int;
  mutable clock : 'p frame list;  (** snapshot used by the cooling sweep *)
}

type 'p t = {
  engine : Engine.t;
  pstore : Pagestore.t;
  parts : 'p partition array;
  codec : 'p codec;
  mutable next_page_id : int;
  (* A real system keeps the GSN and last-writer in the page header; the
     payload codec here is page-content only, so evicted pages park that
     metadata in a sidecar and recover it at fault-in. *)
  gsn_sidecar : (int, int * int) Hashtbl.t;
}

let create engine ~store ~partitions ~budget_bytes ~codec =
  let per = budget_bytes / max 1 partitions in
  {
    engine;
    pstore = store;
    parts =
      Array.init partitions (fun _ ->
          { frames = Hashtbl.create 256; cooling = Queue.create (); used_bytes = 0; budget = per; clock = [] });
    codec;
    next_page_id = 0;
    gsn_sidecar = Hashtbl.create 256;
  }

let set_budget t ~budget_bytes =
  let per = budget_bytes / max 1 (Array.length t.parts) in
  Array.iter (fun p -> p.budget <- per) t.parts

let costs () =
  match Scheduler.current_scheduler () with Some s -> Scheduler.cost s | None -> Cost.default

let now t = Engine.now t.engine

let alloc t ~partition payload =
  t.next_page_id <- t.next_page_id + 1;
  let part = t.parts.(partition) in
  let size = t.codec.size payload in
  let frame =
    {
      fpage_id = t.next_page_id;
      fpartition = partition;
      flatch = Latch.create ();
      fpayload = Some payload;
      fstate = Hot;
      fdirty = true;
      fpinned = 0;
      fsize = size;
      faccess_count = 0;
      flast_access = now t;
      fgsn = 0;
      fwriter_slot = -1;
      fparent = None;
    }
  in
  Hashtbl.replace part.frames frame.fpage_id frame;
  part.used_bytes <- part.used_bytes + size;
  frame

let swip_of frame = { ptr = Swizzled frame }

let payload frame =
  match frame.fpayload with
  | Some p -> p
  | None -> invalid_arg "Bufmgr.payload: frame not resident"

let latch f = f.flatch
let page_id f = f.fpage_id
let mark_dirty f = f.fdirty <- true
let is_dirty f = f.fdirty

let update_size t frame =
  let part = t.parts.(frame.fpartition) in
  let size = match frame.fpayload with Some p -> t.codec.size p | None -> 0 in
  part.used_bytes <- part.used_bytes + size - frame.fsize;
  frame.fsize <- size

let pin f = f.fpinned <- f.fpinned + 1

let unpin f =
  if f.fpinned <= 0 then invalid_arg "Bufmgr.unpin: not pinned";
  f.fpinned <- f.fpinned - 1

let set_parent f swip = f.fparent <- Some swip

let touch_frame t frame ~touch =
  (* the OLTP temperature counter honours [touch] (scans must not warm
     data, 5.2) but eviction recency must not: any resolver may hold the
     frame reference across a coalesced-charge suspension *)
  if touch then frame.faccess_count <- frame.faccess_count + 1;
  frame.flast_access <- now t;
  if frame.fstate = Cooling then frame.fstate <- Hot

let resolve ?(touch = true) t swip =
  match swip.ptr with
  | Swizzled frame ->
    (* recency first: the charge may suspend at a coalescing boundary,
       and an un-refreshed frame could be evicted in that window *)
    touch_frame t frame ~touch;
    Scheduler.charge Component.Buffer (costs ()).Cost.buffer_hit;
    touch_frame t frame ~touch:false;
    frame
  | Unswizzled pid -> (
    Scheduler.charge Component.Buffer (costs ()).Cost.buffer_miss;
    let raw = Pagestore.read t.pstore ~page_id:pid in
    (* The calling fiber suspended for the read: someone else may have
       faulted the same page in meanwhile. *)
    match swip.ptr with
    | Swizzled frame ->
      touch_frame t frame ~touch;
      frame
    | Unswizzled _ ->
      let payload = t.codec.decode raw in
      let gsn, writer_slot =
        match Hashtbl.find_opt t.gsn_sidecar pid with Some meta -> meta | None -> (0, -1)
      in
      (* Allocate into the faulting worker's partition: ownership of a
         page follows whoever re-heats it. *)
      let partition =
        match Scheduler.current_scheduler () with
        | Some _ when Scheduler.in_fiber () ->
          Scheduler.current_worker () mod Array.length t.parts
        | _ -> 0
      in
      let part = t.parts.(partition) in
      let frame =
        {
          fpage_id = pid;
          fpartition = partition;
          flatch = Latch.create ();
          fpayload = Some payload;
          fstate = Hot;
          fdirty = false;
          fpinned = 0;
          fsize = t.codec.size payload;
          faccess_count = (if touch then 1 else 0);
          flast_access = now t;
          fgsn = gsn;
          fwriter_slot = writer_slot;
          fparent = Some swip;
        }
      in
      Hashtbl.replace part.frames pid frame;
      part.used_bytes <- part.used_bytes + frame.fsize;
      swip.ptr <- Swizzled frame;
      frame)

let drop t frame =
  let part = t.parts.(frame.fpartition) in
  if Hashtbl.mem part.frames frame.fpage_id then begin
    Hashtbl.remove part.frames frame.fpage_id;
    part.used_bytes <- part.used_bytes - frame.fsize
  end;
  frame.fpayload <- None;
  Pagestore.delete t.pstore ~page_id:frame.fpage_id

let write_back t frame =
  match frame.fpayload with
  | Some p when frame.fdirty ->
    Pagestore.write t.pstore ~page_id:frame.fpage_id (t.codec.encode p);
    frame.fdirty <- false
  | _ -> ()

let access_count f = f.faccess_count
let last_access f = f.flast_access
let page_gsn f = f.fgsn
let set_page_gsn f g = f.fgsn <- g
let last_writer_slot f = f.fwriter_slot
let set_last_writer_slot f s = f.fwriter_slot <- s

let reset_access_stats f = f.faccess_count <- 0
let halve_access_count f = f.faccess_count <- f.faccess_count / 2

let resident_frame_of_swip swip =
  match swip.ptr with Swizzled f -> Some f | Unswizzled _ -> None

let page_id_of_swip swip =
  match swip.ptr with Swizzled f -> f.fpage_id | Unswizzled pid -> pid

let cold_swip _t pid = { ptr = Unswizzled pid }

let needs_maintenance t ~partition =
  let part = t.parts.(partition) in
  part.used_bytes > part.budget

(* Frames touched within this window of virtual time are never demoted
   or evicted: a fiber that just resolved a frame may be suspended on a
   coalesced CPU charge and still hold the direct reference. Operations
   that can *wait* (locks, I/O) re-resolve instead of relying on this. *)
let recency_guard_ns = 100_000

(* Demote hot frames to cooling in (arbitrary but stable) clock order.
   Pinned, latched or recently-touched frames are skipped; so are frames
   already cooling. *)
let refill_cooling t part =
  let now = Engine.now t.engine in
  if part.clock = [] then part.clock <- Hashtbl.fold (fun _ f acc -> f :: acc) part.frames [];
  let rec demote budget_frames clock =
    if budget_frames = 0 then clock
    else
      match clock with
      | [] -> []
      | f :: rest ->
        if
          f.fstate = Hot && f.fpinned = 0
          && (not (Latch.is_exclusive f.flatch))
          && now - f.flast_access >= recency_guard_ns
          && Hashtbl.mem part.frames f.fpage_id
        then begin
          f.fstate <- Cooling;
          Queue.push f part.cooling;
          demote (budget_frames - 1) rest
        end
        else demote budget_frames rest
  in
  part.clock <- demote 16 part.clock

let evict_one t part =
  let c = costs () in
  let rec try_pop () =
    match Queue.take_opt part.cooling with
    | None -> false
    | Some f ->
      if
        f.fstate <> Cooling || f.fpinned > 0
        || Engine.now t.engine - f.flast_access < recency_guard_ns
        || not (Hashtbl.mem part.frames f.fpage_id)
      then
        (* touched (second chance), recently used, pinned, or dropped *)
        try_pop ()
      else begin
        Scheduler.charge Component.Buffer c.Cost.buffer_evict;
        (match f.fpayload with
        | Some p ->
          if f.fdirty then begin
            let raw = t.codec.encode p in
            Pagestore.write t.pstore ~page_id:f.fpage_id raw;
            f.fdirty <- false
          end;
          (* Re-check: the write suspended us; the frame may have been
             re-heated or re-touched while we were writing back. *)
          if
            f.fstate = Cooling && f.fpinned = 0
            && Engine.now t.engine - f.flast_access >= recency_guard_ns
          then begin
            (match f.fparent with
            | Some swip -> swip.ptr <- Unswizzled f.fpage_id
            | None -> ());
            Hashtbl.replace t.gsn_sidecar f.fpage_id (f.fgsn, f.fwriter_slot);
            f.fpayload <- None;
            Hashtbl.remove part.frames f.fpage_id;
            part.used_bytes <- part.used_bytes - f.fsize;
            true
          end
          else true
        | None ->
          Hashtbl.remove part.frames f.fpage_id;
          true)
      end
  in
  try_pop ()

let maintain t ~partition =
  let part = t.parts.(partition) in
  let rec go fuel =
    if fuel > 0 && part.used_bytes > part.budget then begin
      if Queue.is_empty part.cooling then refill_cooling t part;
      if evict_one t part then go (fuel - 1)
      else if not (Queue.is_empty part.cooling) then go (fuel - 1)
      else begin
        refill_cooling t part;
        if not (Queue.is_empty part.cooling) then go (fuel - 1)
      end
    end
  in
  go (Hashtbl.length part.frames + 16)

let resident_bytes t = Array.fold_left (fun acc p -> acc + p.used_bytes) 0 t.parts
let resident_pages t = Array.fold_left (fun acc p -> acc + Hashtbl.length p.frames) 0 t.parts
let partition_of_frame f = f.fpartition
let is_resident f = f.fpayload <> None
let store t = t.pstore
let n_partitions t = Array.length t.parts
