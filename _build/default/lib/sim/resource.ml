type t = {
  engine : Engine.t;
  name : string;
  mutable next_free : int;
  mutable busy_ns : int;
}

let create engine ~name = { engine; name; next_free = 0; busy_ns = 0 }

let acquire_for t ~hold_ns =
  let now = Engine.now t.engine in
  let start = if t.next_free > now then t.next_free else now in
  let finish = start + hold_ns in
  t.next_free <- finish;
  t.busy_ns <- t.busy_ns + hold_ns;
  finish

let busy_until t = t.next_free

let utilisation t ~since =
  let now = Engine.now t.engine in
  let span = now - since in
  if span <= 0 then 0.0 else Float.min 1.0 (float_of_int t.busy_ns /. float_of_int span)

let total_busy_ns t = t.busy_ns
