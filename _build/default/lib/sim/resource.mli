(** A serially-reusable resource with FIFO queueing discipline.

    Models hardware or software servers that process one request at a
    time: the serialised WAL flusher of the PostgreSQL-style baseline,
    its global lock-manager latch, or a single NVMe submission channel.
    [acquire_for] returns the virtual time at which the caller's service
    completes, accounting for everything queued ahead of it. *)

type t

val create : Engine.t -> name:string -> t

val acquire_for : t -> hold_ns:int -> int
(** [acquire_for r ~hold_ns] reserves the resource for [hold_ns] after
    all earlier reservations and returns the completion time. *)

val busy_until : t -> int

val utilisation : t -> since:int -> float
(** Fraction of [since .. now] the resource spent busy. *)

val total_busy_ns : t -> int
