type t = int array

let create () = Array.make Component.count 0
let add t c n = t.(Component.index c) <- t.(Component.index c) + n
let get t c = t.(Component.index c)
let total t = Array.fold_left ( + ) 0 t

type snapshot = int array

let snapshot t = Array.copy t
let diff older newer = Array.init Component.count (fun i -> newer.(i) - older.(i))

let breakdown snap =
  let total = Array.fold_left ( + ) 0 snap in
  let denom = if total = 0 then 1.0 else float_of_int total in
  List.map
    (fun c ->
      let v = snap.(Component.index c) in
      (c, v, float_of_int v /. denom))
    Component.all

let reset t = Array.fill t 0 (Array.length t) 0
