lib/sim/cost.mli:
