lib/sim/counters.ml: Array Component List
