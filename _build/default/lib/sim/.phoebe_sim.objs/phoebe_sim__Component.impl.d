lib/sim/component.ml:
