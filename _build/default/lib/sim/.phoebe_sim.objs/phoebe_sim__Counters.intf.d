lib/sim/counters.mli: Component
