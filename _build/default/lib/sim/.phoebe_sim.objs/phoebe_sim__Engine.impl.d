lib/sim/engine.ml: Phoebe_util
