lib/sim/engine.mli:
