lib/sim/cost.ml:
