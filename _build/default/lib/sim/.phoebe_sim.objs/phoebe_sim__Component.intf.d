lib/sim/component.mli:
